//! The nine baseline algorithms behind the unified
//! [`Summarizer`] interface, plus the name registry of *every*
//! summarizer in the workspace.
//!
//! Each adapter wraps the crate's free functions without changing their
//! numerics — a `Summary`'s SSE/size is bit-identical to calling the
//! underlying function directly (pinned by `tests/summarizers.rs`). What
//! the adapters add is *bound normalization* (§7's protocol):
//!
//! * natively size-bounded methods (PAA, APCA, DWT, DFT, Chebyshev, SAX,
//!   amnesic) answer [`Bound::Error`] through
//!   [`pta_core::size_for_error_budget`] — the smallest size whose error
//!   fits the ε-budget;
//! * threshold-driven methods search their own knob: ATC sweeps
//!   exponentially decaying local thresholds ([`atc_sweep`]) and keeps
//!   the best run per size, PLA bisects its L∞ tolerance;
//! * everything reports the same time-weighted SSE PTA minimizes, so
//!   curves are directly comparable.

use std::time::{Duration, Instant};

use pta_core::summarize::{
    size_for_error_budget, Bound, BoxedSummarizer, Capabilities, SeriesView, Summarizer, Summary,
    SummaryDetail, SummaryStats,
};
use pta_core::{CoreError, DenseSeries, DpMode, ExactPta, GreedyPta, NaiveDp};

use crate::amnesic::{amnesic_size_bounded, linear_amnesia};
use crate::apca::apca;
use crate::atc::{atc, atc_sweep, AtcRun};
use crate::chebyshev::chebyshev;
use crate::dft::dft;
use crate::dwt::{dwt_for_size, Padding};
use crate::error::BaselineError;
use crate::paa::paa;
use crate::pla::swing_filter;
use crate::sax::sax;

/// The full summarizer registry: exact PTA (auto plus both pinned
/// [`DpMode`] backtracking paths), the certified `(1 + ε)`-approximate
/// `approx` tier (default ε), the naive-DP baseline, the greedy family
/// (streaming δ = 1 and offline GMS), and the nine baseline methods —
/// every algorithm of the §7 comparison, runnable by name.
pub fn registry() -> Vec<BoxedSummarizer> {
    vec![
        Box::new(ExactPta::new()),
        Box::new(ExactPta::with_mode(DpMode::Table)),
        Box::new(ExactPta::with_mode(DpMode::DivideConquer)),
        Box::new(ExactPta::approx(pta_core::DEFAULT_APPROX_EPS)),
        Box::new(NaiveDp::new()),
        Box::new(GreedyPta::new()),
        Box::new(GreedyPta::offline()),
        Box::new(Atc::new()),
        Box::new(Paa),
        Box::new(Apca::new()),
        Box::new(Dwt::new()),
        Box::new(Dft),
        Box::new(Chebyshev),
        Box::new(Sax::new()),
        Box::new(Amnesic::unit()),
        Box::new(Pla::new()),
    ]
}

/// The registry's names, in registry order.
pub fn summarizer_names() -> Vec<&'static str> {
    registry().iter().map(|s| s.name()).collect()
}

/// Looks a summarizer up by its registry name.
pub fn summarizer(name: &str) -> Option<BoxedSummarizer> {
    registry().into_iter().find(|s| s.name() == name)
}

/// Builds a [`Summary`] for a series-method fit (wall stamped by
/// [`Summarizer::summarize`]).
fn series_summary(
    name: &'static str,
    bound: Bound,
    size: usize,
    sse: f64,
    detail: SummaryDetail,
) -> Summary {
    Summary {
        algorithm: name,
        bound,
        size,
        sse,
        wall: Duration::ZERO,
        shared_wall: false,
        stats: SummaryStats::None,
        detail,
    }
}

/// Shared driver of the natively size-bounded series methods: runs `fit`
/// directly for size bounds and searches the smallest fitting size for
/// error bounds. A method whose error never reaches the ε-budget at any
/// size (e.g. SAX's quantization floor) reports not-applicable — the
/// same n/a semantics ATC and PLA use — never a summary that silently
/// overshoots the bound.
fn series_run(
    name: &'static str,
    view: &SeriesView<'_>,
    bound: Bound,
    mut fit: impl FnMut(&DenseSeries, usize) -> Result<(usize, f64, SummaryDetail), CoreError>,
) -> Result<Summary, CoreError> {
    let series = view.dense()?;
    match bound {
        Bound::Size(c) => {
            let (size, sse, detail) = fit(series, c)?;
            Ok(series_summary(name, bound, size, sse, detail))
        }
        Bound::Error(eps) => {
            let budget = view.error_budget(eps)?;
            let c =
                size_for_error_budget(1, series.len(), budget, |c| fit(series, c).map(|f| f.1))?;
            let (size, sse, detail) = fit(series, c)?;
            if sse > budget {
                return Err(CoreError::not_applicable(format!(
                    "{name} cannot reach the error budget {budget} at any size \
                     (best {sse} at size {size})"
                )));
            }
            Ok(series_summary(name, bound, size, sse, detail))
        }
    }
}

// ---------------------------------------------------------------------
// ATC — the only competitor that handles gaps and aggregation groups.
// ---------------------------------------------------------------------

/// Approximate temporal coalescing behind the [`Summarizer`] interface.
///
/// ATC is driven by a *local* per-segment threshold, so bounds are
/// answered from a threshold sweep ([`atc_sweep`], the paper's protocol):
/// a size bound `c` selects the best run with at most `c` tuples, an
/// error bound selects the smallest run within the ε-budget. Always
/// evaluates under strict adjacency (ATC has no gap-tolerant variant).
#[derive(Debug, Clone, Copy)]
pub struct Atc {
    steps_per_decade: usize,
}

impl Default for Atc {
    fn default() -> Self {
        Self::new()
    }
}

impl Atc {
    /// ATC with the evaluation's default sweep resolution (8 thresholds
    /// per decade).
    pub fn new() -> Self {
        Self { steps_per_decade: 8 }
    }

    /// ATC with an explicit sweep resolution.
    pub fn with_steps_per_decade(steps_per_decade: usize) -> Self {
        Self { steps_per_decade }
    }

    fn sweep(&self, view: &SeriesView<'_>) -> Result<Vec<Option<AtcRun>>, CoreError> {
        atc_sweep(view.relation(), view.weights(), self.steps_per_decade)
            .map_err(BaselineError::into_core)
    }

    /// Selects the sweep entry answering `bound`: size bounds take the
    /// best (smallest-SSE) run with at most `c` tuples, error bounds the
    /// smallest run within the budget.
    fn select(
        &self,
        view: &SeriesView<'_>,
        sweep: &[Option<AtcRun>],
        bound: Bound,
    ) -> Result<(usize, AtcRun), CoreError> {
        match bound {
            Bound::Size(c) => {
                let cmin = view.relation().cmin();
                if c < cmin {
                    return Err(CoreError::SizeBelowMinimum { requested: c, cmin });
                }
                sweep
                    .iter()
                    .enumerate()
                    .take(c.min(sweep.len()))
                    .filter_map(|(i, r)| r.map(|r| (i + 1, r)))
                    .min_by(|a, b| a.1.sse.total_cmp(&b.1.sse))
                    .ok_or_else(|| {
                        CoreError::not_applicable(format!("no ATC run achieved size <= {c}"))
                    })
            }
            Bound::Error(eps) => {
                let budget = view.error_budget(eps)?;
                sweep
                    .iter()
                    .enumerate()
                    .filter_map(|(i, r)| r.map(|r| (i + 1, r)))
                    .find(|(_, r)| r.sse <= budget)
                    .ok_or_else(|| {
                        CoreError::not_applicable(format!("no ATC run within budget {budget}"))
                    })
            }
        }
    }

    /// Materializes the reduction of a selected run by re-running
    /// [`atc`] at its recorded threshold — deterministic, and every
    /// sweep entry (including the zero-threshold anchor) records a real
    /// run, so the recorded size/SSE are reproduced exactly.
    fn materialize(
        &self,
        view: &SeriesView<'_>,
        bound: Bound,
        size: usize,
        run: AtcRun,
    ) -> Result<Summary, CoreError> {
        let r = atc(view.relation(), view.weights(), run.threshold)
            .map_err(BaselineError::into_core)?;
        debug_assert_eq!(r.len(), size, "sweep rerun must reproduce the recorded size");
        Ok(Summary {
            algorithm: self.name(),
            bound,
            size: r.len(),
            sse: r.sse(),
            wall: Duration::ZERO,
            shared_wall: false,
            stats: SummaryStats::None,
            detail: SummaryDetail::Reduction(r),
        })
    }
}

impl Summarizer for Atc {
    fn name(&self) -> &'static str {
        "atc"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::RELATION
    }

    fn run(&self, view: &SeriesView<'_>, bound: Bound) -> Result<Summary, CoreError> {
        let sweep = self.sweep(view)?;
        let (size, run) = self.select(view, &sweep, bound)?;
        self.materialize(view, bound, size, run)
    }

    /// Any bound grid shares one threshold sweep; grid points skip the
    /// reduction materialization ([`SummaryDetail::None`]).
    fn summarize_grid(
        &self,
        view: &SeriesView<'_>,
        bounds: &[Bound],
    ) -> Vec<Result<Summary, CoreError>> {
        let start = Instant::now();
        let sweep = match self.sweep(view) {
            Ok(sweep) => sweep,
            Err(e) => return bounds.iter().map(|_| Err(e.clone())).collect(),
        };
        let wall = start.elapsed();
        bounds
            .iter()
            .map(|&bound| {
                let (size, run) = self.select(view, &sweep, bound)?;
                let mut s = Summary::curve_point(self.name(), bound, size, run.sse);
                s.wall = wall;
                Ok(s)
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// The one-dimensional, gap-free series methods.
// ---------------------------------------------------------------------

/// Piecewise aggregate approximation (equal-length segments) behind the
/// [`Summarizer`] interface.
#[derive(Debug, Clone, Copy, Default)]
pub struct Paa;

impl Summarizer for Paa {
    fn name(&self) -> &'static str {
        "paa"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::SERIES
    }

    fn run(&self, view: &SeriesView<'_>, bound: Bound) -> Result<Summary, CoreError> {
        series_run(self.name(), view, bound, |series, c| {
            let pc = paa(series, c).map_err(BaselineError::into_core)?;
            Ok((pc.segments(), pc.sse_against(series), SummaryDetail::Steps(pc)))
        })
    }
}

/// Adaptive piecewise-constant approximation behind the [`Summarizer`]
/// interface.
#[derive(Debug, Clone, Copy)]
pub struct Apca {
    padding: Padding,
}

impl Default for Apca {
    fn default() -> Self {
        Self::new()
    }
}

impl Apca {
    /// APCA with zero padding (the evaluation's setting).
    pub fn new() -> Self {
        Self { padding: Padding::Zero }
    }

    /// APCA with an explicit DWT padding mode.
    pub fn with_padding(padding: Padding) -> Self {
        Self { padding }
    }
}

impl Summarizer for Apca {
    fn name(&self) -> &'static str {
        "apca"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::SERIES
    }

    fn run(&self, view: &SeriesView<'_>, bound: Bound) -> Result<Summary, CoreError> {
        series_run(self.name(), view, bound, |series, c| {
            let pc = apca(series, c, self.padding).map_err(BaselineError::into_core)?;
            Ok((pc.segments(), pc.sse_against(series), SummaryDetail::Steps(pc)))
        })
    }
}

/// Discrete Haar wavelet approximation (best coefficient count for a
/// segment budget) behind the [`Summarizer`] interface.
#[derive(Debug, Clone, Copy)]
pub struct Dwt {
    padding: Padding,
}

impl Default for Dwt {
    fn default() -> Self {
        Self::new()
    }
}

impl Dwt {
    /// DWT with zero padding (the evaluation's setting).
    pub fn new() -> Self {
        Self { padding: Padding::Zero }
    }

    /// DWT with an explicit padding mode.
    pub fn with_padding(padding: Padding) -> Self {
        Self { padding }
    }
}

impl Summarizer for Dwt {
    fn name(&self) -> &'static str {
        "dwt"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::SERIES
    }

    fn run(&self, view: &SeriesView<'_>, bound: Bound) -> Result<Summary, CoreError> {
        series_run(self.name(), view, bound, |series, c| {
            let a = dwt_for_size(series, c, self.padding).map_err(BaselineError::into_core)?;
            Ok((a.segments, a.sse, SummaryDetail::Signal(a.approx)))
        })
    }
}

/// Discrete Fourier approximation (top energy frequencies) behind the
/// [`Summarizer`] interface. Sizes count retained frequencies (conjugate
/// pairs count once), capped at `n/2 + 1`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dft;

impl Summarizer for Dft {
    fn name(&self) -> &'static str {
        "dft"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::SERIES
    }

    fn run(&self, view: &SeriesView<'_>, bound: Bound) -> Result<Summary, CoreError> {
        series_run(self.name(), view, bound, |series, c| {
            let c = match bound {
                // The error search probes sizes up to n; DFT's size
                // domain ends at n/2 + 1 frequencies.
                Bound::Error(_) => c.min(series.len() / 2 + 1),
                Bound::Size(_) => c,
            };
            let a = dft(series, c).map_err(BaselineError::into_core)?;
            Ok((a.frequencies, a.sse, SummaryDetail::Signal(a.approx)))
        })
    }
}

/// Chebyshev polynomial approximation behind the [`Summarizer`]
/// interface. Sizes count polynomial coefficients.
#[derive(Debug, Clone, Copy, Default)]
pub struct Chebyshev;

impl Summarizer for Chebyshev {
    fn name(&self) -> &'static str {
        "chebyshev"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::SERIES
    }

    fn run(&self, view: &SeriesView<'_>, bound: Bound) -> Result<Summary, CoreError> {
        series_run(self.name(), view, bound, |series, c| {
            let a = chebyshev(series, c).map_err(BaselineError::into_core)?;
            Ok((a.coefficients, a.sse, SummaryDetail::Signal(a.approx)))
        })
    }
}

/// Symbolic aggregate approximation behind the [`Summarizer`] interface,
/// scored through its numeric reconstruction.
#[derive(Debug, Clone, Copy)]
pub struct Sax {
    alphabet: usize,
}

impl Default for Sax {
    fn default() -> Self {
        Self::new()
    }
}

impl Sax {
    /// SAX with the common 8-symbol alphabet.
    pub fn new() -> Self {
        Self { alphabet: 8 }
    }

    /// SAX with an explicit alphabet size (`2..=26`).
    pub fn with_alphabet(alphabet: usize) -> Self {
        Self { alphabet }
    }
}

impl Summarizer for Sax {
    fn name(&self) -> &'static str {
        "sax"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::SERIES
    }

    fn run(&self, view: &SeriesView<'_>, bound: Bound) -> Result<Summary, CoreError> {
        series_run(self.name(), view, bound, |series, c| {
            let out = sax(series, c, self.alphabet).map_err(BaselineError::into_core)?;
            Ok((out.approx.segments(), out.sse, SummaryDetail::Steps(out.approx)))
        })
    }
}

/// Amnesic piecewise-constant approximation behind the [`Summarizer`]
/// interface. The reported SSE is the *unweighted* error, comparable
/// across methods; the amnesic weights shape only the segmentation.
#[derive(Debug, Clone, Copy)]
pub struct Amnesic {
    rate: Option<f64>,
}

impl Default for Amnesic {
    fn default() -> Self {
        Self::unit()
    }
}

impl Amnesic {
    /// Unit weights (`RA ≡ 1`): Palpanas et al.'s disabled-amnesia case,
    /// which coincides with exact size-bounded PTA — the registry default,
    /// pinned by `tests/summarizers.rs`.
    pub fn unit() -> Self {
        Self { rate: None }
    }

    /// The paper-cited linear amnesic family `RA(age) = 1 + rate · age`.
    pub fn linear(rate: f64) -> Self {
        Self { rate: Some(rate) }
    }
}

impl Summarizer for Amnesic {
    fn name(&self) -> &'static str {
        "amnesic"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::SERIES
    }

    fn run(&self, view: &SeriesView<'_>, bound: Bound) -> Result<Summary, CoreError> {
        series_run(self.name(), view, bound, |series, c| {
            let pc = match self.rate {
                None => amnesic_size_bounded(series, c, |_| 1.0),
                Some(rate) => amnesic_size_bounded(series, c, linear_amnesia(rate)),
            }
            .map_err(BaselineError::into_core)?;
            Ok((pc.segments(), pc.sse_against(series), SummaryDetail::Steps(pc)))
        })
    }
}

/// The swing-filter piecewise-linear stream method behind the
/// [`Summarizer`] interface.
///
/// PLA's native knob is an L∞ tolerance, so both bounds are answered by
/// bisecting it: a size bound searches the smallest tolerance producing
/// at most `c` segments, an error bound the largest tolerance whose SSE
/// stays within the ε-budget (fewest segments that fit).
#[derive(Debug, Clone, Copy)]
pub struct Pla {
    bisection_steps: usize,
}

impl Default for Pla {
    fn default() -> Self {
        Self::new()
    }
}

impl Pla {
    /// PLA with the default tolerance-search resolution.
    pub fn new() -> Self {
        Self { bisection_steps: 50 }
    }

    /// The initial upper tolerance: the series' value spread (one line
    /// through the spread can absorb everything).
    fn top_epsilon(series: &DenseSeries) -> f64 {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in series.values() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (hi - lo).max(1e-12)
    }
}

impl Summarizer for Pla {
    fn name(&self) -> &'static str {
        "pla"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::SERIES
    }

    fn run(&self, view: &SeriesView<'_>, bound: Bound) -> Result<Summary, CoreError> {
        let series = view.dense()?;
        let fit = |epsilon: f64| swing_filter(series, epsilon).map_err(BaselineError::into_core);
        let finish = |pla: crate::pla::PiecewiseLinear| {
            Ok(Summary {
                algorithm: self.name(),
                bound,
                size: pla.segments(),
                sse: pla.sse_against(series),
                wall: Duration::ZERO,
                shared_wall: false,
                stats: SummaryStats::None,
                detail: SummaryDetail::Signal(pla.to_dense()),
            })
        };
        match bound {
            Bound::Size(c) => {
                if c == 0 || c > series.len() {
                    return Err(CoreError::invalid_size(c, series.len()));
                }
                // Grow the tolerance until the budget holds, then bisect
                // down to the smallest tolerance that still holds.
                let mut hi = Self::top_epsilon(series);
                let mut grow = 0;
                while fit(hi)?.segments() > c {
                    hi *= 2.0;
                    grow += 1;
                    if grow > 64 {
                        return Err(CoreError::not_applicable(format!(
                            "swing filter cannot reach {c} segments"
                        )));
                    }
                }
                let mut lo = 0.0f64;
                for _ in 0..self.bisection_steps {
                    let mid = 0.5 * (lo + hi);
                    if fit(mid)?.segments() <= c {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
                finish(fit(hi)?)
            }
            Bound::Error(eps) => {
                let budget = view.error_budget(eps)?;
                // Grow the tolerance while it stays within budget — one
                // O(n) swing-filter pass per doubling (the accepted
                // probe becomes the new hi; nothing is re-evaluated).
                let mut hi = Self::top_epsilon(series);
                if fit(hi)?.sse_against(series) <= budget {
                    for _ in 0..64 {
                        if fit(hi * 2.0)?.sse_against(series) > budget {
                            break;
                        }
                        hi *= 2.0;
                    }
                }
                let mut lo = 0.0f64;
                for _ in 0..self.bisection_steps {
                    let mid = 0.5 * (lo + hi);
                    if fit(mid)?.sse_against(series) <= budget {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                finish(fit(lo)?)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pta_core::Weights;
    use pta_temporal::SequentialRelation;

    fn series_relation() -> SequentialRelation {
        let values: Vec<f64> =
            (0..48).map(|i| ((i * 13) % 17) as f64 + (i / 12) as f64 * 5.0).collect();
        SequentialRelation::from_time_series(1, 0, &values).expect("valid series")
    }

    #[test]
    fn registry_names_are_unique_and_cover_the_evaluation() {
        let names = summarizer_names();
        let unique: std::collections::BTreeSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "duplicate registry names: {names:?}");
        assert!(names.len() >= 11, "registry lists {} summarizers", names.len());
        for expected in [
            "exact",
            "exact-table",
            "exact-dnc",
            "approx",
            "dp-naive",
            "greedy",
            "gms",
            "atc",
            "paa",
            "apca",
            "dwt",
            "dft",
            "chebyshev",
            "sax",
            "amnesic",
            "pla",
        ] {
            assert!(summarizer(expected).is_some(), "missing {expected}");
        }
        assert!(summarizer("nope").is_none());
    }

    #[test]
    fn every_summarizer_answers_a_size_bound_on_a_plain_series() {
        let rel = series_relation();
        let view = SeriesView::new(&rel, Weights::uniform(1)).unwrap();
        for s in registry() {
            let out = s.summarize(&view, Bound::Size(6)).unwrap_or_else(|e| {
                panic!("{} failed on a plain series: {e}", s.name());
            });
            assert!(out.size <= 6, "{}: size {}", s.name(), out.size);
            assert!(out.sse.is_finite() && out.sse >= 0.0, "{}", s.name());
            assert_eq!(out.algorithm, s.name());
        }
    }

    #[test]
    fn every_summarizer_answers_an_error_bound_or_declares_it() {
        let rel = series_relation();
        let view = SeriesView::new(&rel, Weights::uniform(1)).unwrap();
        let budget = view.error_budget(0.3).unwrap();
        for s in registry() {
            if !s.capabilities().error_bounded {
                assert!(s.summarize(&view, Bound::Error(0.3)).is_err(), "{}", s.name());
                continue;
            }
            // The contract: a summary that fits the budget, or an n/a
            // error (a method whose error floor exceeds the budget at
            // every size) — never a silent overshoot.
            match s.summarize(&view, Bound::Error(0.3)) {
                Ok(out) => {
                    assert!(out.sse <= budget, "{}: {} > {budget}", s.name(), out.sse)
                }
                Err(e) => assert!(
                    e.common().is_some_and(pta_temporal::CommonError::is_not_applicable),
                    "{}: {e}",
                    s.name()
                ),
            }
        }
    }

    #[test]
    fn unreachable_error_budgets_are_reported_not_overshot() {
        // A two-level step series: SAX's 8-symbol quantization cannot
        // represent arbitrary means, so a near-zero budget is
        // unreachable at every size — the adapter must say so.
        let values: Vec<f64> =
            (0..64).map(|i| if (i / 4) % 2 == 0 { 1.0 } else { 10.0 + (i % 3) as f64 }).collect();
        let rel = SequentialRelation::from_time_series(1, 0, &values).unwrap();
        let view = SeriesView::new(&rel, Weights::uniform(1)).unwrap();
        let budget = view.error_budget(1e-9).unwrap();
        match Sax::new().summarize(&view, Bound::Error(1e-9)) {
            Ok(out) => assert!(out.sse <= budget, "silent overshoot: {} > {budget}", out.sse),
            Err(e) => {
                assert!(e.common().is_some_and(pta_temporal::CommonError::is_not_applicable), "{e}")
            }
        }
    }

    #[test]
    fn atc_size_bound_takes_the_best_run_at_most_c() {
        let rel = series_relation();
        let view = SeriesView::new(&rel, Weights::uniform(1)).unwrap();
        let sweep = atc_sweep(&rel, &Weights::uniform(1), 8).unwrap();
        let s = Atc::new().summarize(&view, Bound::Size(10)).unwrap();
        let best = sweep.iter().take(10).flatten().map(|r| r.sse).fold(f64::INFINITY, f64::min);
        assert_eq!(s.sse, best);
        assert!(s.size <= 10);
        assert!(matches!(s.detail, SummaryDetail::Reduction(_)));
    }

    #[test]
    fn grid_points_match_single_runs_for_atc() {
        let rel = series_relation();
        let view = SeriesView::new(&rel, Weights::uniform(1)).unwrap();
        let atc = Atc::new();
        let bounds = [Bound::Size(5), Bound::Size(12), Bound::Error(0.2)];
        let grid = atc.summarize_grid(&view, &bounds);
        for (b, g) in bounds.iter().zip(&grid) {
            let single = atc.summarize(&view, *b).unwrap();
            let g = g.as_ref().unwrap();
            assert_eq!(g.sse, single.sse, "{b:?}");
            assert_eq!(g.size, single.size, "{b:?}");
        }
    }

    #[test]
    fn atc_grid_and_single_agree_on_inputs_with_zero_error_neighbors() {
        // Equal adjacent values merge at every threshold (including 0),
        // so ATC can never emit size n here; the sweep's lossless anchor
        // is the real zero-threshold run, and single runs must reproduce
        // exactly what the grid reports for the same bound.
        let values = [5.0, 5.0, 3.0, 9.0, 1.0, 7.0, 7.0, 2.0];
        let rel = SequentialRelation::from_time_series(1, 0, &values).unwrap();
        let view = SeriesView::new(&rel, Weights::uniform(1)).unwrap();
        let atc = Atc::new();
        let bound = Bound::Error(0.0);
        let single = atc.summarize(&view, bound).unwrap();
        let grid = atc.summarize_grid(&view, &[bound]);
        let grid = grid[0].as_ref().unwrap();
        assert_eq!(single.size, grid.size);
        assert_eq!(single.sse, grid.sse);
        // Both zero-error pairs merged: the lossless anchor has n-2 tuples.
        assert_eq!(single.size, rel.len() - 2);
        assert_eq!(single.sse, 0.0);
        assert!(matches!(single.detail, SummaryDetail::Reduction(_)));
    }

    #[test]
    fn pla_size_bound_respects_the_budget() {
        let rel = series_relation();
        let view = SeriesView::new(&rel, Weights::uniform(1)).unwrap();
        for c in [2usize, 5, 10] {
            let s = Pla::new().summarize(&view, Bound::Size(c)).unwrap();
            assert!(s.size <= c, "c = {c}: got {} segments", s.size);
        }
    }

    #[test]
    fn series_methods_reject_grouped_input_as_not_applicable() {
        use pta_temporal::{GroupKey, SequentialBuilder, TimeInterval, Value};
        let mut b = SequentialBuilder::new(1);
        b.push(GroupKey::new(vec![Value::str("A")]), TimeInterval::new(0, 3).unwrap(), &[1.0])
            .unwrap();
        b.push(GroupKey::new(vec![Value::str("B")]), TimeInterval::new(0, 3).unwrap(), &[2.0])
            .unwrap();
        let rel = b.build();
        let view = SeriesView::new(&rel, Weights::uniform(1)).unwrap();
        for name in ["paa", "apca", "dwt", "dft", "chebyshev", "sax", "amnesic", "pla"] {
            let err = summarizer(name).unwrap().summarize(&view, Bound::Size(2)).unwrap_err();
            assert!(
                err.common().is_some_and(pta_temporal::CommonError::is_not_applicable),
                "{name}: {err}"
            );
            assert!(!summarizer(name).unwrap().capabilities().groups_and_gaps);
        }
        // The relation-level methods accept it.
        for name in ["exact", "approx", "greedy", "gms", "atc", "dp-naive"] {
            assert!(summarizer(name).unwrap().summarize(&view, Bound::Size(2)).is_ok(), "{name}");
            assert!(summarizer(name).unwrap().capabilities().groups_and_gaps);
        }
    }
}
