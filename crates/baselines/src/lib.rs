//! Comparator approximation algorithms from the PTA paper's evaluation
//! (§2.2, §7).
//!
//! * [`mod@atc`] — approximate temporal coalescing (Berberich et al.): local
//!   error-threshold merging over sequential relations; the only
//!   competitor that handles gaps and aggregation groups.
//! * [`mod@paa`] — piecewise aggregate approximation (Keogh & Pazzani; Yi &
//!   Faloutsos): `c` equal-length segments.
//! * [`mod@dwt`] — discrete Haar wavelet approximation (top-`k` coefficients),
//!   with the incremental machinery needed to search a coefficient count
//!   whose reconstruction has a target segment count.
//! * [`mod@apca`] — adaptive piecewise constant approximation (Chakrabarti et
//!   al.): DWT reconstruction, true segment means, greedy merge to `c`.
//! * [`mod@dft`] — discrete Fourier approximation (top-`c` conjugate pairs).
//! * [`mod@chebyshev`] — Chebyshev polynomial approximation (Cai & Ng).
//! * [`mod@sax`] — symbolic aggregate approximation (Lin et al.), a
//!   related-work extension.
//! * [`mod@amnesic`] — amnesic piecewise-constant approximation (Palpanas et
//!   al.); with unit weights it coincides with size-bounded PTA.
//! * [`mod@pla`] — the swing-filter piecewise-linear stream method
//!   (Elmeleegy et al.) with its L∞ guarantee.
//!
//! All time-series methods operate on a [`DenseSeries`] — the per-chronon
//! expansion of a gap-free, single-group sequential relation. Their errors
//! are the same time-weighted SSE PTA minimizes, so curves are directly
//! comparable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amnesic;
pub mod apca;
pub mod atc;
pub mod chebyshev;
pub mod dft;
pub mod dwt;
pub mod error;
pub mod paa;
pub mod pla;
pub mod sax;
pub mod segment;
pub mod series;
pub mod summarize;

pub use amnesic::{amnesic_size_bounded, linear_amnesia};
pub use apca::apca;
pub use atc::{atc, atc_size_targeted, atc_sweep, AtcRun};
pub use chebyshev::chebyshev;
pub use dft::dft;
pub use dwt::{dwt_for_size, dwt_top_k, DwtTable, Padding};
pub use error::BaselineError;
pub use paa::paa;
pub use pla::{swing_filter, PiecewiseLinear};
pub use sax::{sax, SaxOutput};
pub use segment::PiecewiseConstant;
pub use series::DenseSeries;
pub use summarize::{registry, summarizer, summarizer_names};

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, BaselineError>;
