//! Symbolic aggregate approximation (SAX, Lin et al., §2.2) — a
//! related-work extension.
//!
//! SAX z-normalises the series, applies PAA with `c` segments, and maps
//! each segment mean to one of `w` symbols chosen so each is equally
//! probable under a standard normal. We additionally reconstruct a
//! numeric approximation (each symbol valued at the expected value of its
//! normal bin, de-normalised) so SAX error curves can sit on the same
//! axes as the other methods. PAA's limitations carry over (§2.2).

use crate::error::BaselineError;
use crate::paa::paa;
use crate::segment::PiecewiseConstant;
use crate::series::DenseSeries;

/// A SAX discretisation plus its numeric reconstruction.
#[derive(Debug, Clone)]
pub struct SaxOutput {
    /// Symbol per segment, `0..w`.
    pub symbols: Vec<u8>,
    /// Numeric reconstruction (bin expected values, de-normalised).
    pub approx: PiecewiseConstant,
    /// SSE of the reconstruction against the original series.
    pub sse: f64,
}

/// SAX with `c` segments over an alphabet of `w ∈ 2..=26` symbols.
pub fn sax(series: &DenseSeries, c: usize, w: usize) -> Result<SaxOutput, BaselineError> {
    if !(2..=26).contains(&w) {
        return Err(BaselineError::invalid_parameter(
            "alphabet size",
            format!("SAX alphabet size must be in 2..=26, got {w}"),
        ));
    }
    let mean = series.mean();
    let sd = series.std_dev();
    let paa_approx = paa(series, c)?;

    // Breakpoints β_1..β_{w−1}: standard normal quantiles at i/w.
    let breakpoints: Vec<f64> = (1..w).map(|i| normal_quantile(i as f64 / w as f64)).collect();
    // Bin representative: E[Z | β_i < Z ≤ β_{i+1}] = (φ(a) − φ(b)) / (1/w).
    let phi = |x: f64| (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
    let bin_value = |bin: usize| -> f64 {
        let lo = if bin == 0 { f64::NEG_INFINITY } else { breakpoints[bin - 1] };
        let hi = if bin == w - 1 { f64::INFINITY } else { breakpoints[bin] };
        let (plo, phi_hi) = (
            if lo.is_finite() { phi(lo) } else { 0.0 },
            if hi.is_finite() { phi(hi) } else { 0.0 },
        );
        (plo - phi_hi) * w as f64
    };

    let mut symbols = Vec::with_capacity(c);
    let mut values = Vec::with_capacity(c);
    for &m in paa_approx.values() {
        let z = if sd > 0.0 { (m - mean) / sd } else { 0.0 };
        let bin = breakpoints.partition_point(|&b| b < z).min(w - 1);
        symbols.push(bin as u8);
        values.push(bin_value(bin) * sd + mean);
    }
    let approx = PiecewiseConstant::new(series.len(), &paa_approx.boundaries(), values)?;
    let sse = approx.sse_against(series);
    Ok(SaxOutput { symbols, approx, sse })
}

/// Acklam's rational approximation of the standard normal quantile
/// function (|error| < 1.15e-9 over (0, 1)).
fn normal_quantile(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_approximation_is_accurate() {
        // Known values: Φ⁻¹(0.5) = 0, Φ⁻¹(0.975) ≈ 1.959964,
        // Φ⁻¹(0.84134) ≈ 1.0.
        assert!(normal_quantile(0.5).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959_964).abs() < 1e-5);
        assert!((normal_quantile(0.841_344_75) - 1.0).abs() < 1e-5);
        assert!((normal_quantile(0.025) + 1.959_964).abs() < 1e-5);
    }

    #[test]
    fn equiprobable_breakpoints_for_w4() {
        // Classic SAX table for w = 4: ±0.6745, 0.
        let s = DenseSeries::new((0..32).map(|i| i as f64).collect());
        let out = sax(&s, 8, 4).unwrap();
        assert_eq!(out.symbols.len(), 8);
        // Monotone series ⇒ monotone symbols.
        assert!(out.symbols.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(out.symbols[0], 0);
        assert_eq!(out.symbols[7], 3);
    }

    #[test]
    fn larger_alphabets_do_not_hurt() {
        let s = DenseSeries::new((0..64).map(|i| ((i * 13) % 29) as f64).collect());
        let coarse = sax(&s, 16, 3).unwrap();
        let fine = sax(&s, 16, 16).unwrap();
        assert!(fine.sse <= coarse.sse + 1e-9);
    }

    #[test]
    fn constant_series_maps_to_middle() {
        let s = DenseSeries::new(vec![7.0; 16]);
        let out = sax(&s, 4, 4).unwrap();
        // sd = 0: z = 0 falls in bin 2 of 4 (first bin with breakpoint ≥ 0).
        assert!(out.symbols.iter().all(|&b| b == out.symbols[0]));
    }

    #[test]
    fn invalid_alphabet_rejected() {
        let s = DenseSeries::new(vec![1.0; 8]);
        assert!(sax(&s, 4, 1).is_err());
        assert!(sax(&s, 4, 27).is_err());
    }
}
