//! Chebyshev polynomial approximation (Cai & Ng, §2.2, Fig. 2(d)).
//!
//! The series is treated as a function over `[−1, 1]`; the first `c`
//! Chebyshev coefficients are computed by Gauss–Chebyshev quadrature over
//! the interpolated series, and the restored polynomial is sampled at
//! every time point. Like DFT the result is continuous; the paper compares
//! it against PTA results with the same number of intervals.

use crate::error::BaselineError;
use crate::series::DenseSeries;

/// A Chebyshev approximation.
#[derive(Debug, Clone)]
pub struct ChebApprox {
    /// The polynomial sampled at every time point.
    pub approx: Vec<f64>,
    /// Coefficients used.
    pub coefficients: usize,
    /// SSE against the original series.
    pub sse: f64,
}

/// Approximates with the first `c` Chebyshev coefficients.
pub fn chebyshev(series: &DenseSeries, c: usize) -> Result<ChebApprox, BaselineError> {
    let n = series.len();
    if c == 0 || c > n {
        return Err(BaselineError::invalid_size(c, n));
    }
    // Value of the series at a real position in [0, n−1], linearly
    // interpolated between samples.
    let value_at = |pos: f64| -> f64 {
        if n == 1 {
            return series.get(0);
        }
        let pos = pos.clamp(0.0, (n - 1) as f64);
        let lo = pos.floor() as usize;
        let hi = (lo + 1).min(n - 1);
        let frac = pos - lo as f64;
        series.get(lo) * (1.0 - frac) + series.get(hi) * frac
    };

    // Gauss–Chebyshev quadrature with m = n nodes: x_k = cos(π(k+½)/m).
    let m = n.max(c);
    let mf = m as f64;
    let mut coeffs = vec![0.0; c];
    for k in 0..m {
        let theta = std::f64::consts::PI * (k as f64 + 0.5) / mf;
        let xk = theta.cos();
        let f = value_at((xk + 1.0) / 2.0 * (n - 1) as f64);
        for (j, coeff) in coeffs.iter_mut().enumerate() {
            *coeff += f * (j as f64 * theta).cos();
        }
    }
    for coeff in &mut coeffs {
        *coeff *= 2.0 / mf;
    }

    // Clenshaw evaluation at each time point.
    let mut approx = Vec::with_capacity(n);
    for t in 0..n {
        let x = if n == 1 { 0.0 } else { 2.0 * t as f64 / (n - 1) as f64 - 1.0 };
        let (mut b1, mut b2) = (0.0, 0.0);
        for &a in coeffs.iter().skip(1).rev() {
            let b0 = 2.0 * x * b1 - b2 + a;
            b2 = b1;
            b1 = b0;
        }
        approx.push(x * b1 - b2 + coeffs[0] / 2.0);
    }
    let sse = series.sse_against(&approx);
    Ok(ChebApprox { approx, coefficients: c, sse })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_series_is_exact_with_one_coefficient() {
        let s = DenseSeries::new(vec![5.5; 20]);
        let a = chebyshev(&s, 1).unwrap();
        assert!(a.sse < 1e-12, "sse {}", a.sse);
    }

    #[test]
    fn linear_series_is_near_exact_with_two_coefficients() {
        let s = DenseSeries::new((0..32).map(|i| 2.0 * i as f64 - 7.0).collect());
        let a = chebyshev(&s, 2).unwrap();
        assert!(a.sse < 1e-6 * 32.0, "sse {}", a.sse);
    }

    #[test]
    fn error_broadly_decreases_with_degree() {
        let s = DenseSeries::new((0..64).map(|i| ((i as f64) * 0.37).sin() * 4.0).collect());
        let low = chebyshev(&s, 2).unwrap().sse;
        let high = chebyshev(&s, 12).unwrap().sse;
        assert!(high < low * 0.5, "low {low}, high {high}");
    }

    #[test]
    fn invalid_sizes_rejected() {
        let s = DenseSeries::new(vec![1.0; 4]);
        assert!(chebyshev(&s, 0).is_err());
        assert!(chebyshev(&s, 5).is_err());
    }
}
