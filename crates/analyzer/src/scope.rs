//! Structural passes over the token stream: `#[cfg(test)]` / `#[test]`
//! region tracking (so rules can exempt test code) and function-extent
//! extraction (so per-function rules know which tokens belong to whom).

use crate::lexer::{TokKind, Token};

/// A half-open token-index range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokSpan {
    /// First token index of the region.
    pub start: usize,
    /// One past the last token index of the region.
    pub end: usize,
}

impl TokSpan {
    /// True when token index `i` falls inside the span.
    pub fn contains(&self, i: usize) -> bool {
        self.start <= i && i < self.end
    }
}

/// One `fn` item: its name, position, and body extent.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Token index of the `fn` keyword.
    pub fn_idx: usize,
    /// Tokens of the whole item, signature through closing brace
    /// (`[fn_idx, end)`); trait-method declarations end at the `;`.
    pub span: TokSpan,
    /// Body-only extent (inside the braces); empty for declarations.
    pub body: TokSpan,
}

/// Returns spans of test-only code: bodies of `#[cfg(test)]` items
/// (typically `mod tests { ... }`) and of `#[test]` functions.
///
/// The scan is token-based: it finds a test attribute, then extends the
/// region over the *next item* — through the matching `}` of the item's
/// first body brace, or through a terminating `;` for brace-less items
/// (`#[cfg(test)] use ...;`).
pub fn test_spans(toks: &[Token]) -> Vec<TokSpan> {
    let mut spans: Vec<TokSpan> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if let Some(open) = spans.last() {
            if open.contains(i) {
                // Skip ahead: nested test attributes inside an already
                // test-marked region add nothing.
                i = open.end;
                continue;
            }
        }
        if !(toks[i].kind == TokKind::Punct && toks[i].text == "#") {
            i += 1;
            continue;
        }
        let Some((attr_end, is_test)) = parse_attribute(toks, i) else {
            i += 1;
            continue;
        };
        if !is_test {
            i = attr_end;
            continue;
        }
        let end = item_end(toks, attr_end);
        spans.push(TokSpan { start: i, end });
        i = attr_end;
    }
    spans
}

/// Parses an attribute starting at the `#` of `#[...]`; returns the token
/// index one past the closing `]` and whether the attribute marks test
/// code (`#[test]` or any `cfg(...)` mentioning `test`).
fn parse_attribute(toks: &[Token], hash: usize) -> Option<(usize, bool)> {
    let mut i = hash + 1;
    if toks.get(i).is_some_and(|t| t.text == "!") {
        i += 1; // inner attribute #![...]
    }
    if !toks.get(i).is_some_and(|t| t.kind == TokKind::Punct && t.text == "[") {
        return None;
    }
    let mut depth = 0usize;
    let mut idents: Vec<&str> = Vec::new();
    while i < toks.len() {
        let t = &toks[i];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "[") => depth += 1,
            (TokKind::Punct, "]") => {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            (TokKind::Ident, name) => idents.push(name),
            _ => {}
        }
        i += 1;
    }
    let is_bare_test = idents == ["test"];
    let is_cfg_test = idents.first() == Some(&"cfg") && idents.contains(&"test");
    Some((i, is_bare_test || is_cfg_test))
}

/// Finds the end (exclusive) of the item that starts at token `i`: skips
/// further attributes, then runs to the matching `}` of the first `{` —
/// or just past a `;` met before any brace.
fn item_end(toks: &[Token], mut i: usize) -> usize {
    // Skip stacked attributes between the test attribute and the item.
    while toks.get(i).is_some_and(|t| t.kind == TokKind::Punct && t.text == "#") {
        match parse_attribute(toks, i) {
            Some((end, _)) => i = end,
            None => break,
        }
    }
    while i < toks.len() {
        match (toks[i].kind, toks[i].text.as_str()) {
            (TokKind::Punct, ";") => return i + 1,
            (TokKind::Punct, "{") => return matching_close(toks, i),
            _ => i += 1,
        }
    }
    toks.len()
}

/// Given the index of an opening `{`, returns one past its matching `}`.
fn matching_close(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        match (toks[i].kind, toks[i].text.as_str()) {
            (TokKind::Punct, "{") => depth += 1,
            (TokKind::Punct, "}") => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

/// Extracts every `fn` item (free, inherent, trait, nested) with its body
/// extent. Tokens of a nested `fn` belong to both the inner and outer
/// entries; [`innermost_fn`] resolves ties for per-function rules.
pub fn functions(toks: &[Token]) -> Vec<FnInfo> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if !(t.kind == TokKind::Ident && t.text == "fn") {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else { continue };
        if name_tok.kind != TokKind::Ident {
            continue; // `Fn()` trait sugar or a stray `fn`
        }
        // Find the body `{` (or `;` for declarations), skipping the
        // signature. Closure bodies and const-generic braces inside
        // signatures are rare enough to accept as a known limitation.
        let mut j = i + 2;
        let mut body = TokSpan { start: i + 2, end: i + 2 };
        let mut end = toks.len();
        let mut paren = 0isize;
        while j < toks.len() {
            match (toks[j].kind, toks[j].text.as_str()) {
                (TokKind::Punct, "(") => paren += 1,
                (TokKind::Punct, ")") => paren -= 1,
                (TokKind::Punct, ";") if paren == 0 => {
                    end = j + 1;
                    break;
                }
                (TokKind::Punct, "{") if paren == 0 => {
                    end = matching_close(toks, j);
                    body = TokSpan { start: j + 1, end: end.saturating_sub(1) };
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        out.push(FnInfo {
            name: name_tok.text.clone(),
            line: t.line,
            col: t.col,
            fn_idx: i,
            span: TokSpan { start: i, end },
            body,
        });
    }
    out
}

/// The innermost function whose item span contains token `i`, if any.
pub fn innermost_fn(fns: &[FnInfo], i: usize) -> Option<&FnInfo> {
    fns.iter().filter(|f| f.span.contains(i)).min_by_key(|f| f.span.end - f.span.start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_module_is_one_span() {
        let toks = lex("fn a() {}\n#[cfg(test)]\nmod tests {\n fn b() { x.unwrap(); }\n}\n");
        let spans = test_spans(&toks);
        assert_eq!(spans.len(), 1);
        let unwrap_idx = toks.iter().position(|t| t.text == "unwrap");
        assert!(unwrap_idx.is_some_and(|i| spans[0].contains(i)));
        let a_idx = toks.iter().position(|t| t.text == "a");
        assert!(a_idx.is_some_and(|i| !spans[0].contains(i)));
    }

    #[test]
    fn test_fn_with_stacked_attrs() {
        let toks = lex("#[test]\n#[ignore]\nfn t() { panic!(\"x\") }\nfn lib() {}");
        let spans = test_spans(&toks);
        assert_eq!(spans.len(), 1);
        let panic_idx = toks.iter().position(|t| t.text == "panic");
        assert!(panic_idx.is_some_and(|i| spans[0].contains(i)));
        let lib_idx = toks.iter().rposition(|t| t.text == "lib");
        assert!(lib_idx.is_some_and(|i| !spans[0].contains(i)));
    }

    #[test]
    fn braceless_cfg_test_item_ends_at_semicolon() {
        let toks = lex("#[cfg(test)]\nuse std::fmt;\nfn real() {}");
        let spans = test_spans(&toks);
        assert_eq!(spans.len(), 1);
        let real_idx = toks.iter().position(|t| t.text == "real");
        assert!(real_idx.is_some_and(|i| !spans[0].contains(i)));
    }

    #[test]
    fn functions_and_innermost() {
        let toks = lex("fn outer() { fn inner() { loop {} } }");
        let fns = functions(&toks);
        assert_eq!(fns.len(), 2);
        let loop_idx = toks.iter().position(|t| t.text == "loop");
        let inner = loop_idx.and_then(|i| innermost_fn(&fns, i)).map(|f| f.name.clone());
        assert_eq!(inner.as_deref(), Some("inner"));
    }
}
