//! Minimal JSON support: a position-tracking parser (for the
//! `BENCH_dp.json` schema rule) and string escaping (for `--format json`
//! output). Hand-rolled because the analyzer is dependency-free.

/// A parsed JSON value, each carrying the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null(u32),
    /// `true` / `false`
    Bool(u32, bool),
    /// Any number (JSON does not distinguish int/float; the schema rule
    /// does its own integer checks on the raw f64).
    Num(u32, f64),
    /// A string.
    Str(u32, String),
    /// An array.
    Arr(u32, Vec<Value>),
    /// An object, insertion-ordered.
    Obj(u32, Vec<(String, Value)>),
}

impl Value {
    /// The 1-based line this value starts on.
    pub fn line(&self) -> u32 {
        match self {
            Value::Null(l)
            | Value::Bool(l, _)
            | Value::Num(l, _)
            | Value::Str(l, _)
            | Value::Arr(l, _)
            | Value::Obj(l, _) => *l,
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(_, fields) => fields.iter().find_map(|(k, v)| (k == key).then_some(v)),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
}

/// Parses a complete JSON document; trailing whitespace allowed, trailing
/// garbage is an error. Errors carry the 1-based line they occur on.
pub fn parse(src: &str) -> Result<Value, (u32, String)> {
    let mut p = Parser { bytes: src.as_bytes(), pos: 0, line: 1 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err((p.line, "trailing characters after JSON document".to_string()));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'\n' {
                self.line += 1;
            } else if !matches!(b, b' ' | b'\t' | b'\r') {
                break;
            }
            self.pos += 1;
        }
    }

    fn err(&self, msg: &str) -> (u32, String) {
        (self.line, msg.to_string())
    }

    fn eat(&mut self, b: u8) -> Result<(), (u32, String)> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, (u32, String)> {
        self.skip_ws();
        let line = self.line;
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(line),
            Some(b'[') => self.array(line),
            Some(b'"') => Ok(Value::Str(line, self.string()?)),
            Some(b't') => self.literal("true").map(|()| Value::Bool(line, true)),
            Some(b'f') => self.literal("false").map(|()| Value::Bool(line, false)),
            Some(b'n') => self.literal("null").map(|()| Value::Null(line)),
            Some(b) if b.is_ascii_digit() || *b == b'-' => self.number(line),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), (u32, String)> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn object(&mut self, line: u32) -> Result<Value, (u32, String)> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Obj(line, fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(line, fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, line: u32) -> Result<Value, (u32, String)> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Arr(line, items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(line, items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, (u32, String)> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            match hex {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return Err(self.err("bad \\u escape")),
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Multi-byte UTF-8: copy the whole scalar.
                    let start = self.pos;
                    let width = utf8_width(b);
                    let chunk = self.bytes.get(start..start + width);
                    match chunk.and_then(|c| std::str::from_utf8(c).ok()) {
                        Some(s) => {
                            out.push_str(s);
                            self.pos += width;
                        }
                        None => return Err(self.err("invalid UTF-8 in string")),
                    }
                }
            }
        }
    }

    fn number(&mut self, line: u32) -> Result<Value, (u32, String)> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(|n| Value::Num(line, n))
            .ok_or_else(|| self.err("malformed number"))
    }
}

fn utf8_width(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_records_with_lines() {
        let src = "[\n  {\"a\": 1, \"b\": \"x\"},\n  {\"a\": 2.5}\n]\n";
        let v = parse(src).unwrap();
        let Value::Arr(1, items) = &v else { panic!("want array at line 1") };
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].line(), 2);
        assert_eq!(items[1].line(), 3);
        assert_eq!(items[0].get("a"), Some(&Value::Num(2, 1.0)));
        assert_eq!(items[1].get("b"), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("[] []").is_err());
    }

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
