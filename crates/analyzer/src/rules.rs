//! The project-specific lint rules.
//!
//! Each rule is a free function `fn(ws, &mut Vec<Finding>)` pushing *raw*
//! findings; the engine in [`crate::analyze`] applies waivers afterwards,
//! so rules stay oblivious to suppression. Rule identifiers are the
//! public contract (they appear in waivers and in `--format json`).

use crate::json::{self, Value};
use crate::lexer::{TokKind, Token};
use crate::scope::FnInfo;
use crate::{FileRole, Finding, RsFile, Workspace};

/// Rule id: panics forbidden in library code.
pub const NO_PANIC_IN_LIB: &str = "no-panic-in-lib";
/// Rule id: raw threads forbidden outside `pta-pool`.
pub const POOL_ONLY_CONCURRENCY: &str = "pool-only-concurrency";
/// Rule id: row/merge loops in `dp/`/`greedy/` must poll cancellation.
pub const CANCEL_COVERAGE: &str = "cancel-coverage";
/// Rule id: request-handler fns in the serve tier must reference the
/// request deadline machinery.
pub const DEADLINE_COVERAGE: &str = "deadline-coverage";
/// Rule id: failpoint site names must live in `FAILPOINT_SITES` and be
/// exercised by the fault-injection suite.
pub const FAILPOINT_REGISTRY: &str = "failpoint-registry";
/// Rule id: float `==`/`!=` in `pta-core` kernels needs a waiver.
pub const FLOAT_EQ: &str = "float-eq";
/// Rule id: manifests inherit workspace lints; shim deps go through
/// `[workspace.dependencies]`.
pub const MANIFEST_DISCIPLINE: &str = "manifest-discipline";
/// Rule id: `BENCH_dp.json` records carry the required keys and types.
pub const BENCH_SCHEMA: &str = "bench-schema";
/// Meta-rule id: a waiver that suppresses nothing.
pub const UNUSED_WAIVER: &str = "unused-waiver";
/// Meta-rule id: a `pta-lint:` comment that does not parse.
pub const WAIVER_SYNTAX: &str = "waiver-syntax";

/// `(id, summary)` for every rule, for `--list-rules` and the README.
pub const ALL_RULES: &[(&str, &str)] = &[
    (NO_PANIC_IN_LIB, "unwrap/expect/panic!/unreachable!/todo!/unimplemented! outside tests, bins, benches, and examples"),
    (POOL_ONLY_CONCURRENCY, "std::thread::{spawn,scope} outside pta-pool (bypasses in_worker + catch_unwind)"),
    (CANCEL_COVERAGE, "row/merge loops in core dp//greedy/ that never reference the CancelToken"),
    (DEADLINE_COVERAGE, "request-handler fns in crates/serve that never reference the deadline/budget/cancel machinery"),
    (FAILPOINT_REGISTRY, "fail_point! sites must appear exactly once in FAILPOINT_SITES and in tests/fault_injection.rs"),
    (FLOAT_EQ, "== or != with a float operand in pta-core kernels (waiver required)"),
    (MANIFEST_DISCIPLINE, "member crates inherit [workspace.lints]; shim deps only via workspace inheritance"),
    (BENCH_SCHEMA, "BENCH_dp.json records: algorithm/n/c/mode/strategy/threads/wall_ms/cells/eps/certified_ratio, typed"),
    (UNUSED_WAIVER, "a pta-lint waiver that suppresses no finding"),
    (WAIVER_SYNTAX, "a pta-lint comment that does not parse or lacks a reason"),
];

fn push(
    out: &mut Vec<Finding>,
    file: &RsFile,
    line: u32,
    col: u32,
    rule: &'static str,
    message: String,
) {
    out.push(Finding { file: file.rel.clone(), line, col, rule, message });
}

/// **no-panic-in-lib** — the service tier's headline promise is typed
/// errors end to end; a stray `.unwrap()` in a library path turns a bad
/// input into an abort. Bins, benches, examples, and test code may panic.
pub fn no_panic_in_lib(ws: &Workspace, out: &mut Vec<Finding>) {
    const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
    for file in &ws.files {
        if file.role != FileRole::Lib {
            continue;
        }
        for (i, t) in file.tokens.iter().enumerate() {
            if t.kind != TokKind::Ident || file.in_test(i) {
                continue;
            }
            let name = t.text.as_str();
            let prev = prev_code(&file.tokens, i);
            let next = next_code(&file.tokens, i);
            let is_macro = PANIC_MACROS.contains(&name)
                && next.is_some_and(|n| n.kind == TokKind::Punct && n.text == "!");
            let is_method = PANIC_METHODS.contains(&name)
                && prev.is_some_and(|p| p.kind == TokKind::Punct && p.text == ".");
            if is_macro {
                push(
                    out,
                    file,
                    t.line,
                    t.col,
                    NO_PANIC_IN_LIB,
                    format!(
                        "`{name}!` in library code — return a typed error instead, or waive with \
                     `// pta-lint: allow({NO_PANIC_IN_LIB}) — <why>`"
                    ),
                );
            } else if is_method {
                push(
                    out,
                    file,
                    t.line,
                    t.col,
                    NO_PANIC_IN_LIB,
                    format!(
                    "`.{name}()` in library code — convert to a typed error (`ok_or_else`, `?`) \
                     or waive with `// pta-lint: allow({NO_PANIC_IN_LIB}) — <why>`"
                ),
                );
            }
        }
    }
}

/// **pool-only-concurrency** — every thread in the workspace must be a
/// `pta_pool::Pool` worker: raw `std::thread::spawn`/`scope` skips the
/// `in_worker` nesting guard (oversubscription) and the per-job
/// `catch_unwind` (one panic takes down siblings). Integration tests may
/// spawn (they drive the public API from outside), the pool itself must.
pub fn pool_only_concurrency(ws: &Workspace, out: &mut Vec<Finding>) {
    for file in &ws.files {
        if file.rel.starts_with("crates/shims/pool/") {
            continue;
        }
        if file.role == FileRole::TestLike && file.rel.split('/').rev().nth(1) == Some("tests") {
            continue;
        }
        for (i, t) in file.tokens.iter().enumerate() {
            if t.kind != TokKind::Ident || t.text != "thread" || file.in_test(i) {
                continue;
            }
            let Some((sep_i, sep)) = next_code_idx(&file.tokens, i) else { continue };
            if !(sep.kind == TokKind::Punct && sep.text == "::") {
                continue;
            }
            let Some((_, target)) = next_code_idx(&file.tokens, sep_i) else { continue };
            if target.kind == TokKind::Ident && (target.text == "spawn" || target.text == "scope") {
                push(
                    out,
                    file,
                    t.line,
                    t.col,
                    POOL_ONLY_CONCURRENCY,
                    format!(
                        "`thread::{}` outside pta-pool bypasses the in_worker guard and \
                     catch_unwind isolation — use `pta_pool::Pool::map`/`try_map`",
                        target.text
                    ),
                );
            }
        }
    }
}

/// **cancel-coverage** — `PtaQuery::deadline` only works if every long
/// loop polls the token. A function in `dp/` or `greedy/` that loops over
/// rows or merges without any cancellation reference is a hole in that
/// guarantee: either it polls, its caller demonstrably polls per
/// iteration (waive it, saying so), or deadlines silently stop covering
/// that path.
pub fn cancel_coverage(ws: &Workspace, out: &mut Vec<Finding>) {
    const ROW_MERGE: &[&str] = &["row", "rows", "merge", "merges", "merged", "merging"];
    for file in &ws.files {
        let in_scope = file.rel.starts_with("crates/core/src/dp/")
            || file.rel.starts_with("crates/core/src/greedy/");
        if !in_scope {
            continue;
        }
        for f in &file.fns {
            if file.in_test(f.fn_idx) || f.body.start == f.body.end {
                continue;
            }
            let body = &file.tokens[f.body.start..f.body.end];
            let has_loop = body.iter().any(|t| {
                t.kind == TokKind::Ident && matches!(t.text.as_str(), "for" | "while" | "loop")
            });
            if !has_loop {
                continue;
            }
            let row_merge = fn_mentions(f, body, |seg| ROW_MERGE.contains(&seg));
            if !row_merge {
                continue;
            }
            let span = &file.tokens[f.span.start..f.span.end];
            let cancelled = span.iter().any(|t| {
                t.kind == TokKind::Ident && {
                    let lower = t.text.to_lowercase();
                    lower.contains("cancel") || lower.contains("deadline")
                }
            });
            if !cancelled {
                push(
                    out,
                    file,
                    f.line,
                    f.col,
                    CANCEL_COVERAGE,
                    format!(
                        "fn `{}` loops over rows/merges but never references the cancel token — \
                     poll `cancel.check()?` (or waive, naming the caller that polls)",
                        f.name
                    ),
                );
            }
        }
    }
}

/// **deadline-coverage** — the serve tier's headline promise is that
/// every request runs under a budget: queue wait is charged, computation
/// is cancelled, expired requests shed with typed errors. A
/// request-handler function in `crates/serve` that never touches the
/// deadline machinery is a path where that promise silently lapses —
/// either it threads the token through, its caller demonstrably enforces
/// the budget around it (waive it, saying so), or requests on that path
/// run unbounded. Handlers are recognized by name (`handle*`/`dispatch*`
/// segments) among functions that take request inputs; `&self`-only
/// accessors (e.g. a `handle()` that returns a server handle) are not
/// handlers.
pub fn deadline_coverage(ws: &Workspace, out: &mut Vec<Finding>) {
    const HANDLER: &[&str] = &["handle", "handler", "handlers", "dispatch"];
    const EVIDENCE: &[&str] = &["cancel", "deadline", "budget"];
    for file in &ws.files {
        if !file.rel.starts_with("crates/serve/src/") || file.role != FileRole::Lib {
            continue;
        }
        for f in &file.fns {
            if file.in_test(f.fn_idx) || f.body.start == f.body.end {
                continue;
            }
            let named_handler = f.name.to_lowercase().split('_').any(|seg| HANDLER.contains(&seg));
            if !named_handler || !takes_non_self_args(&file.tokens, f) {
                continue;
            }
            let span = &file.tokens[f.span.start..f.span.end];
            let covered = span.iter().any(|t| {
                t.kind == TokKind::Ident && {
                    let lower = t.text.to_lowercase();
                    EVIDENCE.iter().any(|e| lower.contains(e))
                }
            });
            if !covered {
                push(
                    out,
                    file,
                    f.line,
                    f.col,
                    DEADLINE_COVERAGE,
                    format!(
                        "request-handler fn `{}` never references the request deadline — thread \
                         the budget through (`CancelToken`, `remaining_budget`) or waive, naming \
                         the caller that enforces it",
                        f.name
                    ),
                );
            }
        }
    }
}

/// True when the fn's parameter list names anything beyond `self` — the
/// discriminator between a request handler (takes request inputs) and an
/// accessor.
fn takes_non_self_args(toks: &[Token], f: &FnInfo) -> bool {
    let sig = &toks[f.span.start..f.body.start.min(f.span.end)];
    let Some(open) = sig.iter().position(|t| t.kind == TokKind::Punct && t.text == "(") else {
        return false;
    };
    let mut depth = 0usize;
    for t in &sig[open..] {
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "(") => depth += 1,
            (TokKind::Punct, ")") => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            (TokKind::Ident, name) if name != "self" && name != "mut" => return true,
            _ => {}
        }
    }
    false
}

/// True when the fn's name or any body identifier has a `_`-separated
/// segment matching `pred`.
fn fn_mentions(f: &FnInfo, body: &[Token], pred: impl Fn(&str) -> bool) -> bool {
    let ident_hits = |s: &str| {
        let lower = s.to_lowercase();
        lower.split('_').any(&pred)
    };
    ident_hits(&f.name) || body.iter().any(|t| t.kind == TokKind::Ident && ident_hits(&t.text))
}

/// **failpoint-registry** — fault sites are an API surface shared by
/// code, the injection suite, and the docs; the `FAILPOINT_SITES` const
/// in the failpoints shim is the single source of truth. Every
/// `fail_point!` name must appear exactly once there, every registry
/// entry must correspond to a live site, and every entry must be
/// exercised by `tests/fault_injection.rs`. Dynamic site families
/// (`format!("prefix.{}", ...)`) register as `prefix.*`.
pub fn failpoint_registry(ws: &Workspace, out: &mut Vec<Finding>) {
    // 1. The registry: string literals after `FAILPOINT_SITES`, up to `;`.
    let mut registry: Vec<(String, u32, u32)> = Vec::new();
    let mut registry_file: Option<&RsFile> = None;
    for file in &ws.files {
        let Some(at) = file
            .tokens
            .iter()
            .position(|t| t.kind == TokKind::Ident && t.text == "FAILPOINT_SITES")
        else {
            continue;
        };
        if registry_file.is_some() {
            continue; // first definition wins; re-exports just mention the name
        }
        registry_file = Some(file);
        for t in &file.tokens[at..] {
            if t.kind == TokKind::Punct && t.text == ";" {
                break;
            }
            if matches!(t.kind, TokKind::StrLit | TokKind::RawStrLit) {
                registry.push((t.str_content().to_string(), t.line, t.col));
            }
        }
    }
    let Some(reg_file) = registry_file else {
        if let Some(file) = ws.files.iter().find(|f| f.rel.contains("shims/failpoints/")) {
            push(
                out,
                file,
                1,
                1,
                FAILPOINT_REGISTRY,
                "no `FAILPOINT_SITES` registry found — declare the const listing every \
                 fail_point! site name"
                    .to_string(),
            );
        }
        return;
    };
    // Registry self-checks: duplicates.
    for (i, (name, line, col)) in registry.iter().enumerate() {
        if registry[..i].iter().any(|(n, _, _)| n == name) {
            push(
                out,
                reg_file,
                *line,
                *col,
                FAILPOINT_REGISTRY,
                format!("duplicate FAILPOINT_SITES entry `{name}`"),
            );
        }
    }

    // 2. The sites: every fail_point!(...) invocation outside tests.
    let mut used = vec![false; registry.len()];
    for file in &ws.files {
        for (i, t) in file.tokens.iter().enumerate() {
            if !(t.kind == TokKind::Ident && t.text == "fail_point") || file.in_test(i) {
                continue;
            }
            let Some((bang_i, bang)) = next_code_idx(&file.tokens, i) else { continue };
            if !(bang.kind == TokKind::Punct && bang.text == "!") {
                continue;
            }
            let Some((open_i, open)) = next_code_idx(&file.tokens, bang_i) else { continue };
            if !(open.kind == TokKind::Punct && open.text == "(") {
                continue;
            }
            let Some((_, arg)) = next_code_idx(&file.tokens, open_i) else { continue };
            let site = match arg.kind {
                TokKind::StrLit | TokKind::RawStrLit => arg.str_content().to_string(),
                TokKind::Ident if arg.text == "format" => {
                    match first_str_after(&file.tokens, open_i) {
                        Some(fmt) => match fmt.split('{').next() {
                            Some(prefix) if !prefix.is_empty() => format!("{prefix}*"),
                            _ => {
                                push(
                                    out,
                                    file,
                                    t.line,
                                    t.col,
                                    FAILPOINT_REGISTRY,
                                    "fail_point! with a fully dynamic name cannot be \
                                     registry-checked — use a literal prefix"
                                        .to_string(),
                                );
                                continue;
                            }
                        },
                        None => continue,
                    }
                }
                _ => {
                    push(
                        out,
                        file,
                        t.line,
                        t.col,
                        FAILPOINT_REGISTRY,
                        "fail_point! site name must be a string literal or a \
                         format! with a literal prefix"
                            .to_string(),
                    );
                    continue;
                }
            };
            let hits: Vec<usize> = registry
                .iter()
                .enumerate()
                .filter(|(_, (n, _, _))| *n == site)
                .map(|(k, _)| k)
                .collect();
            match hits.len() {
                0 => push(
                    out,
                    file,
                    t.line,
                    t.col,
                    FAILPOINT_REGISTRY,
                    format!(
                        "fail_point! site `{site}` is not in FAILPOINT_SITES — register it in \
                     {} and exercise it in tests/fault_injection.rs",
                        reg_file.rel
                    ),
                ),
                _ => hits.iter().for_each(|&k| used[k] = true),
            }
        }
    }

    // 3. Dead registry entries + injection-suite coverage.
    let fault_suite = ws.files.iter().find(|f| f.rel == "tests/fault_injection.rs");
    for (k, (name, line, col)) in registry.iter().enumerate() {
        if !used[k] {
            push(
                out,
                reg_file,
                *line,
                *col,
                FAILPOINT_REGISTRY,
                format!(
                    "FAILPOINT_SITES entry `{name}` matches no fail_point! site in the workspace"
                ),
            );
        }
        let probe = name.trim_end_matches('*');
        match fault_suite {
            Some(suite) if suite.text.contains(probe) => {}
            Some(_) => push(
                out,
                reg_file,
                *line,
                *col,
                FAILPOINT_REGISTRY,
                format!("failpoint site `{name}` is never exercised by tests/fault_injection.rs"),
            ),
            None => push(
                out,
                reg_file,
                *line,
                *col,
                FAILPOINT_REGISTRY,
                "tests/fault_injection.rs not found — failpoint sites have no \
                 injection coverage"
                    .to_string(),
            ),
        }
    }
}

/// The first string literal after token index `i` (used to pull the
/// `format!` template out of a dynamic fail_point! name).
fn first_str_after(toks: &[Token], i: usize) -> Option<&str> {
    toks[i + 1..]
        .iter()
        .take(8)
        .find(|t| matches!(t.kind, TokKind::StrLit | TokKind::RawStrLit))
        .map(|t| t.str_content())
}

/// **float-eq** — bitwise float equality in the SSE kernels is almost
/// always a bug (NaN never equals itself; catastrophic cancellation makes
/// "equal" runs diverge). Where it *is* intended — exact-sentinel
/// comparisons, tie-break parity — the inline waiver states why.
pub fn float_eq(ws: &Workspace, out: &mut Vec<Finding>) {
    for file in &ws.files {
        if !file.rel.starts_with("crates/core/src/") || file.role != FileRole::Lib {
            continue;
        }
        for (i, t) in file.tokens.iter().enumerate() {
            if !(t.kind == TokKind::Punct && (t.text == "==" || t.text == "!=")) {
                continue;
            }
            if file.in_test(i) {
                continue;
            }
            if operand_is_floaty(&file.tokens, i, true) || operand_is_floaty(&file.tokens, i, false)
            {
                push(
                    out,
                    file,
                    t.line,
                    t.col,
                    FLOAT_EQ,
                    format!(
                        "`{}` with a float operand in a pta-core kernel — compare against an \
                     epsilon or waive with `// pta-lint: allow({FLOAT_EQ}) — <why>`",
                        t.text
                    ),
                );
            }
        }
    }
}

/// Scans one side of a comparison (left when `back`, else right) up to an
/// expression boundary, looking for float evidence: a float literal or an
/// `f64`/`f32` ident.
fn operand_is_floaty(toks: &[Token], op: usize, back: bool) -> bool {
    const BOUNDARY: &[&str] = &[
        ",", ";", "{", "}", "(", ")", "[", "]", "&&", "||", "=", "=>", "==", "!=", "<", ">", "<=",
        ">=",
    ];
    let mut step = 0usize;
    let mut i = op;
    loop {
        let next = if back { i.checked_sub(1) } else { Some(i + 1) };
        let Some(j) = next.filter(|&j| j < toks.len()) else { return false };
        i = j;
        let t = &toks[i];
        if t.is_comment() {
            continue;
        }
        step += 1;
        if step > 8 || (t.kind == TokKind::Punct && BOUNDARY.contains(&t.text.as_str())) {
            return false;
        }
        if t.kind == TokKind::NumLit && t.is_float {
            return true;
        }
        if t.kind == TokKind::Ident && (t.text == "f64" || t.text == "f32") {
            return true;
        }
    }
}

/// **manifest-discipline** — one lint wall for the whole workspace:
/// every `[package]` manifest inherits `[workspace.lints]`, and shim
/// crates are only ever named through `[workspace.dependencies]` (a
/// direct `path = ".../shims/..."` in a member would fork the
/// single-point-of-replacement story recorded in the ROADMAP).
pub fn manifest_discipline(ws: &Workspace, out: &mut Vec<Finding>) {
    for m in &ws.manifests {
        let is_workspace_root = section_lines(&m.text, "workspace").is_some();
        let is_shim = m.rel.starts_with("crates/shims/");
        let has_package = section_lines(&m.text, "package").is_some();
        if has_package {
            let inherits = section_lines(&m.text, "lints")
                .is_some_and(|lines| lines.iter().any(|(_, l)| key_is_true(l, "workspace")));
            if !inherits {
                out.push(Finding {
                    file: m.rel.clone(),
                    line: 1,
                    col: 1,
                    rule: MANIFEST_DISCIPLINE,
                    message: "crate does not inherit workspace lints — add \
                              `[lints]\\nworkspace = true`"
                        .to_string(),
                });
            }
        }
        for (lineno, line) in m.text.lines().enumerate() {
            let code = line.split('#').next().unwrap_or("");
            if !code.contains("path") || !code.contains("shims/") {
                continue;
            }
            let allowed =
                is_shim || (is_workspace_root && in_workspace_dependencies(&m.text, lineno));
            if !allowed {
                out.push(Finding {
                    file: m.rel.clone(),
                    line: (lineno + 1) as u32,
                    col: 1,
                    rule: MANIFEST_DISCIPLINE,
                    message: "direct path dependency on a shim crate — use \
                              `<name>.workspace = true` so the shim swap stays one edit"
                        .to_string(),
                });
            }
        }
    }
}

/// The lines of TOML section `[name]` (or `[name.sub]` prefix matches for
/// `workspace`), as `(line_index, text)`; `None` when the section is
/// absent.
fn section_lines<'a>(text: &'a str, name: &str) -> Option<Vec<(usize, &'a str)>> {
    let mut current: Option<Vec<(usize, &'a str)>> = None;
    let mut found = false;
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.starts_with('[') {
            if let Some(cur) = current.take() {
                out.extend(cur);
            }
            let header = trimmed.trim_start_matches('[').trim_end_matches(']');
            let matches_name = header == name || header.starts_with(&format!("{name}."));
            if matches_name {
                found = true;
                current = Some(Vec::new());
            }
            continue;
        }
        if let Some(cur) = current.as_mut() {
            cur.push((i, line));
        }
    }
    if let Some(cur) = current.take() {
        out.extend(cur);
    }
    found.then_some(out)
}

fn key_is_true(line: &str, key: &str) -> bool {
    let code = line.split('#').next().unwrap_or("");
    let mut parts = code.splitn(2, '=');
    let k = parts.next().unwrap_or("").trim();
    let v = parts.next().unwrap_or("").trim();
    k == key && v == "true"
}

/// True when line index `lineno` falls inside `[workspace.dependencies]`.
fn in_workspace_dependencies(text: &str, lineno: usize) -> bool {
    let mut in_section = false;
    for (i, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.starts_with('[') {
            in_section = trimmed == "[workspace.dependencies]";
        }
        if i == lineno {
            return in_section;
        }
    }
    false
}

/// **bench-schema** — `BENCH_dp.json` is the machine-readable perf
/// trajectory consumed by tooling outside this repo; a silently renamed
/// or retyped key breaks that consumer long after the PR lands. Each
/// record must carry `algorithm`/`mode`/`strategy` (strings),
/// `n`/`c`/`threads`/`cells` (integers), `wall_ms` (number), `eps`
/// (`null` for exact runs, else a finite number in `[0, 1]`), and
/// `certified_ratio` (a finite number `≥ 1` — the *a posteriori*
/// approximation certificate; exact runs report `1.0`).
pub fn bench_schema(ws: &Workspace, out: &mut Vec<Finding>) {
    let Some((rel, text)) = &ws.bench_json else { return };
    let mut report = |line: u32, message: String| {
        out.push(Finding { file: rel.clone(), line, col: 1, rule: BENCH_SCHEMA, message });
    };
    let doc = match json::parse(text) {
        Ok(doc) => doc,
        Err((line, msg)) => {
            report(line, format!("BENCH_dp.json does not parse: {msg}"));
            return;
        }
    };
    let Value::Arr(_, records) = &doc else {
        report(doc.line(), "BENCH_dp.json must be a JSON array of records".to_string());
        return;
    };
    const STR_KEYS: &[&str] = &["algorithm", "mode", "strategy"];
    const INT_KEYS: &[&str] = &["n", "c", "threads", "cells"];
    for (idx, rec) in records.iter().enumerate() {
        let Value::Obj(line, _) = rec else {
            report(rec.line(), format!("record {idx} is not an object"));
            continue;
        };
        for key in STR_KEYS {
            match rec.get(key) {
                Some(Value::Str(_, _)) => {}
                Some(v) => report(v.line(), format!("record {idx}: key `{key}` must be a string")),
                None => report(*line, format!("record {idx}: missing required key `{key}`")),
            }
        }
        for key in INT_KEYS {
            match rec.get(key) {
                Some(Value::Num(_, v)) if v.fract() == 0.0 && *v >= 0.0 => {}
                Some(v) => report(
                    v.line(),
                    format!("record {idx}: key `{key}` must be a non-negative integer"),
                ),
                None => report(*line, format!("record {idx}: missing required key `{key}`")),
            }
        }
        match rec.get("wall_ms") {
            Some(Value::Num(_, v)) if v.is_finite() && *v >= 0.0 => {}
            Some(v) => report(v.line(), format!("record {idx}: key `wall_ms` must be a number")),
            None => report(*line, format!("record {idx}: missing required key `wall_ms`")),
        }
        // The approximation columns: `eps` is `null` on exact runs and a
        // finite value in [0, 1] on approx runs; `certified_ratio` is the
        // delivered certificate — finite and ≥ 1 on every record.
        match rec.get("eps") {
            Some(Value::Null(_)) => {}
            Some(Value::Num(_, v)) if v.is_finite() && (0.0..=1.0).contains(v) => {}
            Some(v) => report(
                v.line(),
                format!("record {idx}: key `eps` must be null or a finite number in [0, 1]"),
            ),
            None => report(*line, format!("record {idx}: missing required key `eps`")),
        }
        match rec.get("certified_ratio") {
            Some(Value::Num(_, v)) if v.is_finite() && *v >= 1.0 => {}
            Some(v) => report(
                v.line(),
                format!("record {idx}: key `certified_ratio` must be a finite number >= 1"),
            ),
            None => report(*line, format!("record {idx}: missing required key `certified_ratio`")),
        }
    }
}

/// The next non-comment token strictly after index `i`.
fn next_code(toks: &[Token], i: usize) -> Option<&Token> {
    next_code_idx(toks, i).map(|(_, t)| t)
}

fn next_code_idx(toks: &[Token], i: usize) -> Option<(usize, &Token)> {
    toks[i + 1..].iter().enumerate().find(|(_, t)| !t.is_comment()).map(|(k, t)| (i + 1 + k, t))
}

/// The previous non-comment token strictly before index `i`.
fn prev_code(toks: &[Token], i: usize) -> Option<&Token> {
    toks[..i].iter().rev().find(|t| !t.is_comment())
}
