//! `pta-analyzer` — a self-contained workspace lint engine that enforces
//! the PTA codebase's *own* invariants, the ones `clippy` cannot know:
//!
//! * **no-panic-in-lib** — `unwrap`/`expect`/`panic!`/`unreachable!`/
//!   `todo!`/`unimplemented!` are forbidden in library code (tests, bins,
//!   benches, and examples are exempt); violations convert to typed
//!   errors or carry an inline waiver.
//! * **pool-only-concurrency** — `std::thread::spawn`/`scope` are
//!   forbidden outside `pta-pool`: raw threads bypass the `in_worker`
//!   nesting guard and the `catch_unwind` panic isolation.
//! * **cancel-coverage** — row/merge loops in `dp/` and `greedy/` must
//!   poll the `CancelToken`, or deadlines silently stop working.
//! * **deadline-coverage** — request-handler functions in `crates/serve`
//!   must reference the deadline machinery (`CancelToken`, budgets), or
//!   requests on that path run unbounded.
//! * **failpoint-registry** — every `fail_point!` site name appears
//!   exactly once in `FAILPOINT_SITES` and is exercised by
//!   `tests/fault_injection.rs`.
//! * **float-eq** — `==`/`!=` against float operands in `pta-core`
//!   kernels requires an explicit waiver.
//! * **manifest-discipline** — member crates inherit workspace lints and
//!   never path-depend on `crates/shims/*` directly.
//! * **bench-schema** — `BENCH_dp.json` records carry the required keys
//!   with the right types, so trajectory tooling never silently breaks.
//!
//! Waivers (`// pta-lint: allow(rule) — reason`) are themselves linted:
//! an unused waiver is an `unused-waiver` finding and a malformed one is
//! a `waiver-syntax` finding, so they cannot rot.
//!
//! The engine is offline and dependency-free: a hand-rolled lexer
//! ([`lexer`]), a `#[cfg(test)]`/`#[test]` tracker ([`scope`]), and rule
//! passes ([`rules`]) over every workspace `.rs` file and `Cargo.toml`.

pub mod json;
pub mod lexer;
pub mod rules;
pub mod scope;
pub mod waiver;

use std::fmt;
use std::path::{Path, PathBuf};

use lexer::Token;
use scope::{FnInfo, TokSpan};
use waiver::{BadWaiver, Waiver};

/// One lint finding, printable as `file:line:col rule message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (chars).
    pub col: u32,
    /// Rule identifier (`no-panic-in-lib`, ...).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{} {} {}", self.file, self.line, self.col, self.rule, self.message)
    }
}

/// How a file's path classifies it for exemption purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// Library code — the full rule set applies.
    Lib,
    /// Binary targets (`src/bin/`, `src/main.rs`) — panics allowed.
    Bin,
    /// Tests, benches, examples — panics allowed, spawns allowed in
    /// `tests/`.
    TestLike,
}

/// One lexed and pre-analyzed `.rs` file.
#[derive(Debug)]
pub struct RsFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Raw source text.
    pub text: String,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Test-only regions (`#[cfg(test)]` items, `#[test]` fns).
    pub test_spans: Vec<TokSpan>,
    /// Every `fn` item with its body extent.
    pub fns: Vec<FnInfo>,
    /// Parsed waivers.
    pub waivers: Vec<Waiver>,
    /// Malformed waivers.
    pub bad_waivers: Vec<BadWaiver>,
    /// Path-derived exemption class.
    pub role: FileRole,
}

impl RsFile {
    /// Builds the per-file analysis state from a path and its source.
    pub fn parse(rel: String, text: String) -> Self {
        let tokens = lexer::lex(&text);
        let test_spans = scope::test_spans(&tokens);
        let fns = scope::functions(&tokens);
        let (waivers, bad_waivers) = waiver::waivers(&tokens);
        let role = role_of(&rel);
        Self { rel, text, tokens, test_spans, fns, waivers, bad_waivers, role }
    }

    /// True when token index `i` lies in test-only code.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_spans.iter().any(|s| s.contains(i))
    }
}

fn role_of(rel: &str) -> FileRole {
    let parts: Vec<&str> = rel.split('/').collect();
    let in_dir = |d: &str| parts.iter().rev().skip(1).any(|p| *p == d);
    if in_dir("tests") || in_dir("benches") || in_dir("examples") {
        FileRole::TestLike
    } else if rel.ends_with("src/main.rs") || rel.contains("src/bin/") {
        FileRole::Bin
    } else {
        FileRole::Lib
    }
}

/// One `Cargo.toml` manifest, raw.
#[derive(Debug)]
pub struct ManifestFile {
    /// Workspace-relative path.
    pub rel: String,
    /// Raw TOML text.
    pub text: String,
}

/// Everything the rules need, loaded once.
#[derive(Debug)]
pub struct Workspace {
    /// The analyzed root directory.
    pub root: PathBuf,
    /// Every workspace `.rs` file (excluding `target/` and fixture dirs).
    pub files: Vec<RsFile>,
    /// Every `Cargo.toml`.
    pub manifests: Vec<ManifestFile>,
    /// `BENCH_dp.json` at the root, if present: `(rel, text)`.
    pub bench_json: Option<(String, String)>,
}

/// Directory names the walker never descends into. `fixtures` holds the
/// analyzer's own seeded-violation corpus — linting it would be a
/// self-own.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", ".github", "data"];

/// Loads the workspace rooted at `root`: walks the tree, lexes every
/// `.rs` file, and collects manifests plus `BENCH_dp.json`.
pub fn load_workspace(root: &Path) -> Result<Workspace, String> {
    let mut files = Vec::new();
    let mut manifests = Vec::new();
    let mut bench_json = None;
    walk(root, root, &mut files, &mut manifests, &mut bench_json)?;
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    manifests.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(Workspace { root: root.to_path_buf(), files, manifests, bench_json })
}

fn walk(
    root: &Path,
    dir: &Path,
    files: &mut Vec<RsFile>,
    manifests: &mut Vec<ManifestFile>,
    bench_json: &mut Option<(String, String)>,
) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, files, manifests, bench_json)?;
            continue;
        }
        let rel = rel_path(root, &path);
        if name.ends_with(".rs") {
            let text = read(&path)?;
            files.push(RsFile::parse(rel, text));
        } else if name == "Cargo.toml" {
            let text = read(&path)?;
            manifests.push(ManifestFile { rel, text });
        } else if name == "BENCH_dp.json" && bench_json.is_none() {
            let text = read(&path)?;
            *bench_json = Some((rel, text));
        }
    }
    Ok(())
}

fn read(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let parts: Vec<String> =
        rel.components().map(|c| c.as_os_str().to_string_lossy().into_owned()).collect();
    parts.join("/")
}

/// Runs every rule over the workspace, applies waivers, and reports
/// unused/malformed waivers. Findings come back sorted by
/// `(file, line, col, rule)`.
pub fn analyze(ws: &Workspace) -> Vec<Finding> {
    let mut raw = Vec::new();
    rules::no_panic_in_lib(ws, &mut raw);
    rules::pool_only_concurrency(ws, &mut raw);
    rules::cancel_coverage(ws, &mut raw);
    rules::deadline_coverage(ws, &mut raw);
    rules::failpoint_registry(ws, &mut raw);
    rules::float_eq(ws, &mut raw);
    rules::manifest_discipline(ws, &mut raw);
    rules::bench_schema(ws, &mut raw);

    // Waiver pass: a finding is suppressed by a same-file waiver naming
    // its rule and targeting its line; every waiver must earn its keep.
    let mut out = Vec::new();
    let mut used = vec![Vec::new(); ws.files.len()];
    for (fi, f) in ws.files.iter().enumerate() {
        used[fi] = vec![0usize; f.waivers.len()];
    }
    for finding in raw {
        let suppressed = ws.files.iter().enumerate().find_map(|(fi, f)| {
            if f.rel != finding.file {
                return None;
            }
            f.waivers
                .iter()
                .position(|w| w.rule == finding.rule && w.target_line == finding.line)
                .map(|wi| (fi, wi))
        });
        match suppressed {
            Some((fi, wi)) => used[fi][wi] += 1,
            None => out.push(finding),
        }
    }
    for (fi, f) in ws.files.iter().enumerate() {
        for (wi, w) in f.waivers.iter().enumerate() {
            if used[fi][wi] == 0 {
                out.push(Finding {
                    file: f.rel.clone(),
                    line: w.line,
                    col: w.col,
                    rule: rules::UNUSED_WAIVER,
                    message: format!(
                        "waiver for `{}` suppresses nothing — remove it or fix the target line",
                        w.rule
                    ),
                });
            }
        }
        for b in &f.bad_waivers {
            out.push(Finding {
                file: f.rel.clone(),
                line: b.line,
                col: b.col,
                rule: rules::WAIVER_SYNTAX,
                message: b.message.clone(),
            });
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    out
}

/// Renders findings as the machine-readable `--format json` document.
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\": \"{}\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \
             \"message\": \"{}\"}}",
            json::escape(&f.file),
            f.line,
            f.col,
            f.rule,
            json::escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}
