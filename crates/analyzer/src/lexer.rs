//! A hand-rolled Rust lexer — just enough fidelity for lint rules.
//!
//! The rules in this crate key off *token* boundaries, so the lexer's one
//! job is to never mistake content inside comments, string/char literals,
//! or raw strings for code (and vice versa). It handles:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments;
//! * string literals with escapes, byte strings (`b"..."`), raw strings
//!   (`r"..."`, `r#"..."#`, any `#` count, `br`/`cr` prefixes) — raw
//!   strings may contain `"` and `//` without ending the token;
//! * char literals (including `'"'`, `'\''`, `'\u{1F600}'`, `b'x'`)
//!   disambiguated from lifetimes (`'a`, `'static`);
//! * numeric literals with a float flag (`1.`, `1.5e-3`, `2f64`, but not
//!   `1..n` or `1.max(2)`);
//! * identifiers/keywords, lifetimes, and maximal-munch punctuation
//!   (`::`, `..=`, `==`, `!=`, `->`, ...).
//!
//! Positions are 1-based `(line, col)` counted in characters, matching
//! what editors display and what the fixture tests pin.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unwrap`, `spawn`, ...).
    Ident,
    /// Lifetime (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// Char or byte-char literal (`'x'`, `'"'`, `b'\n'`).
    CharLit,
    /// Cooked string literal (`"..."`, `b"..."`, `c"..."`).
    StrLit,
    /// Raw string literal (`r"..."`, `r#"..."#`, `br#"..."#`).
    RawStrLit,
    /// Numeric literal; `is_float` on [`Token`] distinguishes floats.
    NumLit,
    /// `// ...` comment, text kept (waivers live here).
    LineComment,
    /// `/* ... */` comment (nesting handled), text kept.
    BlockComment,
    /// One punctuation token, maximal munch (`::`, `==`, `..=`, `{`).
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// The token's source text, verbatim (for string literals this
    /// includes the quotes/prefix; for comments the `//` or `/* */`).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in chars) of the token's first character.
    pub col: u32,
    /// For [`TokKind::NumLit`]: the literal is float-typed (`1.0`,
    /// `2e9`, `3f32`). Always `false` for other kinds.
    pub is_float: bool,
}

impl Token {
    /// True when the token is a comment (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// For string literals, the unquoted content; other kinds verbatim.
    pub fn str_content(&self) -> &str {
        match self.kind {
            TokKind::StrLit => {
                let t = self.text.trim_start_matches(['b', 'c']);
                t.strip_prefix('"').and_then(|t| t.strip_suffix('"')).unwrap_or(t)
            }
            TokKind::RawStrLit => {
                let t = self.text.trim_start_matches(['b', 'c', 'r']);
                let hashes = t.chars().take_while(|&c| c == '#').count();
                let inner = &t[hashes..t.len().saturating_sub(hashes)];
                inner.strip_prefix('"').and_then(|t| t.strip_suffix('"')).unwrap_or(inner)
            }
            _ => &self.text,
        }
    }
}

/// Cursor over the source with 1-based line/col tracking.
struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Self { chars: src.chars().peekable(), line: 1, col: 1 }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    /// Peeks the character after the next one (two-char lookahead).
    fn peek2(&mut self) -> Option<char> {
        let mut clone = self.chars.clone();
        clone.next();
        clone.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Multi-char punctuation, longest first, so `..=` never lexes as `..`+`=`.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "...", "..=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

/// Lexes `src` into a token stream. Never fails: malformed input (an
/// unterminated string, a stray byte) degrades to best-effort tokens so a
/// half-edited file still gets linted rather than skipped.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' && cur.peek2() == Some('/') {
            out.push(lex_line_comment(&mut cur, line, col));
            continue;
        }
        if c == '/' && cur.peek2() == Some('*') {
            out.push(lex_block_comment(&mut cur, line, col));
            continue;
        }
        if is_ident_start(c) {
            out.push(lex_ident_or_prefixed_literal(&mut cur, line, col));
            continue;
        }
        if c.is_ascii_digit() {
            out.push(lex_number(&mut cur, line, col));
            continue;
        }
        if c == '\'' {
            out.push(lex_lifetime_or_char(&mut cur, line, col));
            continue;
        }
        if c == '"' {
            let text = lex_cooked_string(&mut cur, String::new());
            out.push(Token { kind: TokKind::StrLit, text, line, col, is_float: false });
            continue;
        }
        out.push(lex_punct(&mut cur, line, col));
    }
    out
}

fn lex_line_comment(cur: &mut Cursor<'_>, line: u32, col: u32) -> Token {
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    Token { kind: TokKind::LineComment, text, line, col, is_float: false }
}

fn lex_block_comment(cur: &mut Cursor<'_>, line: u32, col: u32) -> Token {
    let mut text = String::new();
    let mut depth = 0u32;
    while let Some(c) = cur.peek() {
        if c == '/' && cur.peek2() == Some('*') {
            depth += 1;
            text.push_str("/*");
            cur.bump();
            cur.bump();
        } else if c == '*' && cur.peek2() == Some('/') {
            depth = depth.saturating_sub(1);
            text.push_str("*/");
            cur.bump();
            cur.bump();
            if depth == 0 {
                break;
            }
        } else {
            text.push(c);
            cur.bump();
        }
    }
    Token { kind: TokKind::BlockComment, text, line, col, is_float: false }
}

/// An identifier — unless it is `r`/`b`/`br`/`c`/`cr` immediately followed
/// by a string opener, in which case the whole literal is one token.
fn lex_ident_or_prefixed_literal(cur: &mut Cursor<'_>, line: u32, col: u32) -> Token {
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if is_ident_continue(c) {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    let raw_capable = matches!(text.as_str(), "r" | "br" | "cr");
    let cooked_capable = matches!(text.as_str(), "b" | "c");
    match cur.peek() {
        Some('"') if raw_capable || cooked_capable => {
            if raw_capable {
                let text = lex_raw_string(cur, text);
                Token { kind: TokKind::RawStrLit, text, line, col, is_float: false }
            } else {
                let text = lex_cooked_string(cur, text);
                Token { kind: TokKind::StrLit, text, line, col, is_float: false }
            }
        }
        Some('#') if raw_capable && matches!(cur.peek2(), Some('#' | '"')) => {
            let text = lex_raw_string(cur, text);
            Token { kind: TokKind::RawStrLit, text, line, col, is_float: false }
        }
        Some('\'') if text == "b" => {
            // Byte-char literal b'x': delegate to the char lexer and
            // prepend the prefix.
            let tok = lex_lifetime_or_char(cur, line, col);
            let mut full = text;
            full.push_str(&tok.text);
            Token { kind: tok.kind, text: full, line, col, is_float: false }
        }
        _ => Token { kind: TokKind::Ident, text, line, col, is_float: false },
    }
}

/// Consumes a cooked string body (opening `"` still pending). `prefix`
/// carries an already-consumed `b`/`c`.
fn lex_cooked_string(cur: &mut Cursor<'_>, mut text: String) -> String {
    if cur.peek() == Some('"') {
        text.push('"');
        cur.bump();
    }
    while let Some(c) = cur.bump() {
        text.push(c);
        if c == '\\' {
            if let Some(escaped) = cur.bump() {
                text.push(escaped);
            }
        } else if c == '"' {
            break;
        }
    }
    text
}

/// Consumes a raw string: `#`* then `"` ... `"` then the same `#` count.
/// The body may contain anything — `"` and `//` included — short of the
/// closing quote-hash sequence.
fn lex_raw_string(cur: &mut Cursor<'_>, mut text: String) -> String {
    let mut hashes = 0usize;
    while cur.peek() == Some('#') {
        hashes += 1;
        text.push('#');
        cur.bump();
    }
    if cur.peek() == Some('"') {
        text.push('"');
        cur.bump();
    } else {
        return text; // `r#foo` raw identifier, not a string
    }
    while let Some(c) = cur.bump() {
        text.push(c);
        if c == '"' {
            let mut clone = cur.chars.clone();
            if (0..hashes).all(|_| clone.next() == Some('#')) {
                for _ in 0..hashes {
                    text.push('#');
                    cur.bump();
                }
                break;
            }
        }
    }
    text
}

/// After a `'`: a lifetime when an identifier follows without a closing
/// quote (`'a`, `'static`); otherwise a char literal (`'x'`, `'\''`,
/// `'"'`).
fn lex_lifetime_or_char(cur: &mut Cursor<'_>, line: u32, col: u32) -> Token {
    let mut text = String::from("'");
    cur.bump(); // the opening '
    let first = cur.peek();
    let lifetime_like = first.is_some_and(is_ident_start) && {
        // Look past the ident run: a `'` right after means char literal.
        let mut clone = cur.chars.clone();
        let mut saw = false;
        loop {
            match clone.next() {
                Some(c) if is_ident_continue(c) => saw = true,
                Some('\'') => break !saw, // 'a' is a char, '' cannot happen
                _ => break true,
            }
        }
    };
    if lifetime_like {
        while let Some(c) = cur.peek() {
            if is_ident_continue(c) {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        return Token { kind: TokKind::Lifetime, text, line, col, is_float: false };
    }
    // Char literal: one escape or one char, then the closing quote.
    match cur.bump() {
        Some('\\') => {
            text.push('\\');
            if let Some(e) = cur.bump() {
                text.push(e);
                if e == 'x' {
                    for _ in 0..2 {
                        if let Some(h) = cur.bump() {
                            text.push(h);
                        }
                    }
                } else if e == 'u' {
                    while let Some(c) = cur.bump() {
                        text.push(c);
                        if c == '}' {
                            break;
                        }
                    }
                }
            }
        }
        Some(c) => text.push(c),
        None => {}
    }
    if cur.peek() == Some('\'') {
        text.push('\'');
        cur.bump();
    }
    Token { kind: TokKind::CharLit, text, line, col, is_float: false }
}

fn lex_number(cur: &mut Cursor<'_>, line: u32, col: u32) -> Token {
    let mut text = String::new();
    let mut is_float = false;
    let radix_prefixed = cur.peek() == Some('0') && matches!(cur.peek2(), Some('x' | 'o' | 'b'));
    if radix_prefixed {
        // 0x/0o/0b: digits only, never a float (suffix still consumed).
        for _ in 0..2 {
            if let Some(c) = cur.bump() {
                text.push(c);
            }
        }
        while let Some(c) = cur.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        return Token { kind: TokKind::NumLit, text, line, col, is_float };
    }
    while let Some(c) = cur.peek() {
        if c.is_ascii_digit() || c == '_' {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    // A `.` joins the number only when it cannot be a range (`1..n`) or a
    // method call (`1.max(2)`): next-next must not be `.` or ident-start.
    if cur.peek() == Some('.') {
        let after = cur.peek2();
        let joins = match after {
            Some(c) => c.is_ascii_digit() || !(c == '.' || is_ident_start(c)),
            None => true, // `1.` at EOF is a float
        };
        if joins {
            is_float = true;
            text.push('.');
            cur.bump();
            while let Some(c) = cur.peek() {
                if c.is_ascii_digit() || c == '_' {
                    text.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
        }
    }
    // Exponent: e/E [+/-] digits — only when digits actually follow.
    if matches!(cur.peek(), Some('e' | 'E')) {
        let (a, b) = (cur.peek2(), {
            let mut clone = cur.chars.clone();
            clone.next();
            clone.next();
            clone.next()
        });
        let digits_follow = match a {
            Some(c) if c.is_ascii_digit() => true,
            Some('+' | '-') => b.is_some_and(|c| c.is_ascii_digit()),
            _ => false,
        };
        if digits_follow {
            is_float = true;
            text.extend(cur.bump()); // e
            if matches!(cur.peek(), Some('+' | '-')) {
                text.extend(cur.bump());
            }
            while let Some(c) = cur.peek() {
                if c.is_ascii_digit() || c == '_' {
                    text.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
        }
    }
    // Type suffix (u32, f64, ...): ident chars glued to the literal.
    let mut suffix = String::new();
    while let Some(c) = cur.peek() {
        if is_ident_continue(c) {
            suffix.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    if suffix == "f32" || suffix == "f64" {
        is_float = true;
    }
    text.push_str(&suffix);
    Token { kind: TokKind::NumLit, text, line, col, is_float }
}

fn lex_punct(cur: &mut Cursor<'_>, line: u32, col: u32) -> Token {
    for p in PUNCTS {
        let mut clone = cur.chars.clone();
        if p.chars().all(|pc| clone.next() == Some(pc)) {
            for _ in 0..p.len() {
                cur.bump();
            }
            return Token {
                kind: TokKind::Punct,
                text: (*p).to_string(),
                line,
                col,
                is_float: false,
            };
        }
    }
    let mut text = String::new();
    text.extend(cur.bump());
    Token { kind: TokKind::Punct, text, line, col, is_float: false }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("fn a::b() -> i32 {}");
        assert_eq!(toks[0], (TokKind::Ident, "fn".into()));
        assert_eq!(toks[2], (TokKind::Punct, "::".into()));
        assert_eq!(toks[6], (TokKind::Punct, "->".into()));
    }

    #[test]
    fn range_vs_float() {
        let toks = lex("0..n; 1.5; 1.; 2e3; 1.max(2); 3f64; 0x1f");
        assert!(!toks[0].is_float && toks[0].text == "0");
        assert_eq!(toks[1].text, "..");
        assert!(toks[4].is_float && toks[4].text == "1.5");
        assert!(toks[6].is_float && toks[6].text == "1.");
        assert!(toks[8].is_float && toks[8].text == "2e3");
        assert!(!toks[10].is_float && toks[10].text == "1");
        let f64_tok = toks.iter().find(|t| t.text == "3f64");
        assert!(f64_tok.is_some_and(|t| t.is_float));
        let hex = toks.iter().find(|t| t.text == "0x1f");
        assert!(hex.is_some_and(|t| !t.is_float));
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("a\n  bb");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn raw_strings_hide_quotes_and_comment_markers() {
        let toks = lex(r###"let s = r#"has " quote and // marker"#; x"###);
        let raw = toks.iter().find(|t| t.kind == TokKind::RawStrLit).unwrap();
        assert_eq!(raw.str_content(), r#"has " quote and // marker"#);
        assert!(toks.iter().all(|t| !t.is_comment()));
        assert!(toks.iter().any(|t| t.kind == TokKind::Ident && t.text == "x"));
    }

    #[test]
    fn raw_string_with_more_hashes_and_byte_prefix() {
        let toks = lex(r####"br##"inner "# quote"## done"####);
        assert_eq!(toks[0].kind, TokKind::RawStrLit);
        assert_eq!(toks[0].str_content(), r###"inner "# quote"###);
        assert_eq!(toks[1].text, "done");
    }

    #[test]
    fn nested_block_comments_stay_one_token() {
        let toks = lex("/* outer /* inner */ still comment */ fn");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].kind, TokKind::BlockComment);
        assert_eq!(toks[1].text, "fn");
    }

    #[test]
    fn quote_char_literal_vs_lifetime() {
        let toks = lex("let c = '\"'; &'a str; 'x'");
        assert!(toks.iter().any(|t| t.kind == TokKind::CharLit && t.text == "'\"'"));
        assert!(toks.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert!(toks.iter().any(|t| t.kind == TokKind::CharLit && t.text == "'x'"));
        assert!(toks.iter().all(|t| t.kind != TokKind::StrLit));
    }

    #[test]
    fn byte_string_is_a_cooked_string_not_a_comment() {
        let toks = lex("b\"// not a comment\"");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].kind, TokKind::StrLit);
        assert_eq!(toks[0].str_content(), "// not a comment");
    }

    #[test]
    fn escaped_quote_keeps_cooked_string_together() {
        let toks = lex("\"a\\\"b // x\" y");
        assert_eq!(toks[0].kind, TokKind::StrLit);
        assert_eq!(toks[0].str_content(), "a\\\"b // x");
        assert_eq!(toks[1].text, "y");
        assert!(toks.iter().all(|t| !t.is_comment()));
    }
}
