//! Inline lint waivers.
//!
//! Syntax (one rule per waiver, reason mandatory):
//!
//! ```text
//! // pta-lint: allow(rule-name) — reason the violation is intended
//! ```
//!
//! An ASCII `-`/`--` works in place of the em dash. A waiver written on
//! its own line targets the next line that carries code; a trailing
//! waiver targets its own line. Waivers are themselves linted: one that
//! suppresses nothing is an `unused-waiver` finding, so stale waivers
//! cannot rot in place.

use crate::lexer::Token;

/// One parsed waiver comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// The rule this waiver suppresses.
    pub rule: String,
    /// The justification text after the dash.
    pub reason: String,
    /// 1-based line the waiver comment starts on.
    pub line: u32,
    /// 1-based column of the comment.
    pub col: u32,
    /// The 1-based source line whose findings this waiver suppresses.
    pub target_line: u32,
}

/// A malformed `pta-lint:` comment (bad syntax, missing reason) — always
/// an error, because a waiver that does not parse silently waives nothing.
#[derive(Debug, Clone)]
pub struct BadWaiver {
    /// What is wrong with it.
    pub message: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// 1-based column of the comment.
    pub col: u32,
}

/// Extracts waivers from the token stream's comments.
pub fn waivers(toks: &[Token]) -> (Vec<Waiver>, Vec<BadWaiver>) {
    let mut out = Vec::new();
    let mut bad = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_comment() {
            continue;
        }
        // Waivers live in plain `//` / `/* */` comments only: doc
        // comments (`///`, `//!`, `/**`) merely *talk about* the syntax.
        if t.text.starts_with("///")
            || t.text.starts_with("//!")
            || t.text.starts_with("/**")
            || t.text.starts_with("/*!")
        {
            continue;
        }
        let Some(at) = t.text.find("pta-lint:") else { continue };
        let directive = t.text[at + "pta-lint:".len()..].trim();
        match parse_directive(directive) {
            Ok((rule, reason)) => {
                out.push(Waiver {
                    rule,
                    reason,
                    line: t.line,
                    col: t.col,
                    target_line: target_line(toks, i),
                });
            }
            Err(message) => bad.push(BadWaiver { message, line: t.line, col: t.col }),
        }
    }
    (out, bad)
}

/// Parses `allow(rule) — reason`; returns `(rule, reason)`.
fn parse_directive(s: &str) -> Result<(String, String), String> {
    let Some(rest) = s.strip_prefix("allow(") else {
        return Err(format!("expected `allow(<rule>) — <reason>`, got `{s}`"));
    };
    let Some(close) = rest.find(')') else {
        return Err("unclosed `allow(` in waiver".to_string());
    };
    let rule = rest[..close].trim();
    if rule.is_empty() || rule.contains(',') {
        return Err("waivers name exactly one rule".to_string());
    }
    let after = rest[close + 1..].trim_start();
    let reason = after
        .strip_prefix('—')
        .or_else(|| after.strip_prefix("--"))
        .or_else(|| after.strip_prefix('-'))
        .map(str::trim)
        .unwrap_or("");
    if reason.is_empty() {
        return Err(format!("waiver for `{rule}` is missing its `— <reason>`"));
    }
    Ok((rule.to_string(), reason.to_string()))
}

/// The line a waiver at token index `i` applies to: its own line when code
/// precedes it there (trailing comment), else the line of the next
/// non-comment token.
fn target_line(toks: &[Token], i: usize) -> u32 {
    let line = toks[i].line;
    let trailing = toks[..i].iter().rev().take_while(|t| t.line == line).any(|t| !t.is_comment());
    if trailing {
        return line;
    }
    toks[i + 1..].iter().find(|t| !t.is_comment()).map(|t| t.line).unwrap_or(line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn standalone_waiver_targets_next_code_line() {
        let toks = lex("let a = 1;\n// pta-lint: allow(float-eq) — exact sentinel\nlet b = a;\n");
        let (ws, bad) = waivers(&toks);
        assert!(bad.is_empty());
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].rule, "float-eq");
        assert_eq!(ws[0].target_line, 3);
    }

    #[test]
    fn trailing_waiver_targets_own_line() {
        let toks = lex("x == 0.0; // pta-lint: allow(float-eq) - sentinel compare\n");
        let (ws, bad) = waivers(&toks);
        assert!(bad.is_empty());
        assert_eq!(ws[0].target_line, 1);
    }

    #[test]
    fn missing_reason_is_rejected() {
        let toks = lex("// pta-lint: allow(no-panic-in-lib)\nfn f() {}\n");
        let (ws, bad) = waivers(&toks);
        assert!(ws.is_empty());
        assert_eq!(bad.len(), 1);
    }
}
