//! `pta-analyzer` CLI.
//!
//! ```text
//! cargo run -p pta-analyzer [--release] -- [--root DIR] [--format text|json] [--list-rules]
//! ```
//!
//! Exit status: `0` clean, `1` findings reported, `2` usage/IO error.
//! `--format json` prints a machine-readable findings array on stdout;
//! the default text format prints `file:line:col rule message`, one per
//! finding, plus a summary line on stderr.

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    json: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut list_rules = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(
                    argv.next().ok_or_else(|| "--root needs a directory".to_string())?,
                );
            }
            "--format" => match argv.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    return Err(format!(
                        "--format wants `text` or `json`, got {:?}",
                        other.unwrap_or("nothing")
                    ))
                }
            },
            "--list-rules" => list_rules = true,
            "--help" | "-h" => {
                return Err("usage: pta-analyzer [--root DIR] [--format text|json] [--list-rules]"
                    .to_string())
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Args { root, json, list_rules })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for (id, summary) in pta_analyzer::rules::ALL_RULES {
            println!("{id:24} {summary}");
        }
        return ExitCode::SUCCESS;
    }
    let ws = match pta_analyzer::load_workspace(&args.root) {
        Ok(ws) => ws,
        Err(msg) => {
            eprintln!("pta-analyzer: {msg}");
            return ExitCode::from(2);
        }
    };
    let findings = pta_analyzer::analyze(&ws);
    if args.json {
        print!("{}", pta_analyzer::to_json(&findings));
    } else {
        for f in &findings {
            println!("{f}");
        }
    }
    eprintln!(
        "pta-analyzer: {} file(s), {} finding(s)",
        ws.files.len() + ws.manifests.len(),
        findings.len()
    );
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
