//! A spotless fixture crate: the analyzer must exit 0 here.

/// Adds without panicking, spawning, or comparing floats.
pub fn add(a: u64, b: u64) -> u64 {
    a.wrapping_add(b)
}
