//! A compliant request handler: the budget rides a cancel token that the
//! handler checks before doing work.

pub struct CancelToken;

impl CancelToken {
    pub fn check(&self) -> Result<(), String> {
        Ok(())
    }
}

pub fn handle_request(line: &str, cancel: &CancelToken) -> Result<String, String> {
    cancel.check()?;
    let trimmed = line.trim();
    Ok(format!("ok echo {trimmed}"))
}
