//! Fixture injection suite: drives a.site and the fan.out. family.

#[test]
fn drives_sites() {
    let _ = ("a.site", "fan.out.thing");
}
