//! Seeded deadline-coverage violation: a request handler with no budget
//! wiring — nothing stops this path from running unbounded.
pub fn handle_request(line: &str) -> String {
    let trimmed = line.trim();
    format!("ok echo {trimmed}")
}

/// Not a handler: `&self`-only accessors are exempt by design.
pub struct Srv;
impl Srv {
    pub fn handle(&self) -> u32 {
        7
    }
}
