//! Seeded DP fill: one uncancelled row loop, one properly polled one.

pub fn fill_rows(n: usize) -> usize {
    let mut acc = 0;
    for row in 0..n {
        acc += row;
    }
    acc
}

pub fn fill_rows_polled(n: usize, cancel_fired: &dyn Fn() -> bool) -> usize {
    let mut acc = 0;
    for row in 0..n {
        if cancel_fired() {
            break;
        }
        acc += row;
    }
    acc
}
