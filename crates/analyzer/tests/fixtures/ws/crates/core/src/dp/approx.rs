//! Seeded approx tier: an uncancelled sparsified row loop (the bracket
//! fills must poll like the exact fills do), plus a polled twin.

pub fn fill_bracket_row(runs: usize) -> usize {
    let mut evals = 0;
    for row in 0..runs {
        evals += row;
    }
    evals
}

pub fn fill_bracket_row_polled(runs: usize, cancel_fired: &dyn Fn() -> bool) -> usize {
    let mut evals = 0;
    for row in 0..runs {
        if cancel_fired() {
            break;
        }
        evals += row;
    }
    evals
}
