//! Seeded violations for the analyzer corpus test.

pub fn bad_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn bad_panic() {
    panic!("seeded")
}

pub fn bad_spawn() {
    std::thread::spawn(|| {});
}

pub fn bad_float_eq(x: f64) -> bool {
    x == 0.0
}

pub fn waived_float_eq(x: f64) -> bool {
    x == 0.0 // pta-lint: allow(float-eq) — exact sentinel comparison
}

// pta-lint: allow(no-panic-in-lib) — nothing here actually panics
pub fn innocent() {}

// pta-lint: allow(bogus

pub fn fires(i: usize) {
    pta_failpoints::fail_point!("a.site");
    pta_failpoints::fail_point!(format!("fan.out.{}", i));
    pta_failpoints::fail_point!("rogue.site");
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
