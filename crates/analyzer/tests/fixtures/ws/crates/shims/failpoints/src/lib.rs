//! Fixture registry: duplicate entry, dead entry, and a family prefix.

pub const FAILPOINT_SITES: &[&str] = &[
    "a.site",
    "a.site",
    "dead.site",
    "fan.out.*",
];
