//! Seeded-violation corpus: every rule fires at a pinned line/column, every
//! waiver suppresses exactly one finding, and the binary's exit codes and
//! JSON output hold up end to end.

use std::path::{Path, PathBuf};
use std::process::Command;

use pta_analyzer::{analyze, load_workspace, Finding};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn corpus_findings() -> Vec<Finding> {
    let ws = load_workspace(&fixture("ws")).expect("fixture workspace loads");
    analyze(&ws)
}

/// Each seeded violation surfaces at the exact (file, line, col, rule) it
/// was planted at, in the analyzer's deterministic sort order.
#[test]
fn corpus_findings_are_line_and_col_exact() {
    let findings = corpus_findings();
    let got: Vec<(&str, u32, u32, &str)> =
        findings.iter().map(|f| (f.file.as_str(), f.line, f.col, f.rule)).collect();
    let expected: Vec<(&str, u32, u32, &str)> = vec![
        ("BENCH_dp.json", 3, 1, "bench-schema"),
        ("BENCH_dp.json", 3, 1, "bench-schema"),
        ("BENCH_dp.json", 3, 1, "bench-schema"),
        ("BENCH_dp.json", 3, 1, "bench-schema"),
        ("BENCH_dp.json", 3, 1, "bench-schema"),
        ("crates/core/Cargo.toml", 1, 1, "manifest-discipline"),
        ("crates/core/Cargo.toml", 7, 1, "manifest-discipline"),
        ("crates/core/src/dp/approx.rs", 4, 5, "cancel-coverage"),
        ("crates/core/src/dp/fill.rs", 3, 5, "cancel-coverage"),
        ("crates/core/src/lib.rs", 4, 7, "no-panic-in-lib"),
        ("crates/core/src/lib.rs", 8, 5, "no-panic-in-lib"),
        ("crates/core/src/lib.rs", 12, 10, "pool-only-concurrency"),
        ("crates/core/src/lib.rs", 16, 7, "float-eq"),
        ("crates/core/src/lib.rs", 23, 1, "unused-waiver"),
        ("crates/core/src/lib.rs", 26, 1, "waiver-syntax"),
        ("crates/core/src/lib.rs", 31, 21, "failpoint-registry"),
        ("crates/serve/src/handler.rs", 3, 5, "deadline-coverage"),
        ("crates/shims/failpoints/src/lib.rs", 5, 5, "failpoint-registry"),
        ("crates/shims/failpoints/src/lib.rs", 6, 5, "failpoint-registry"),
        ("crates/shims/failpoints/src/lib.rs", 6, 5, "failpoint-registry"),
    ];
    assert_eq!(got, expected, "full findings:\n{findings:#?}");
}

/// The trailing waiver on line 20 (`x == 0.0 // pta-lint: allow(float-eq)`)
/// suppresses exactly that one finding: no float-eq fires on line 20, the
/// unwaived twin on line 16 still fires, and the waiver itself is counted
/// as used (only the deliberately dangling waiver on line 23 is unused).
#[test]
fn waiver_suppresses_exactly_one_finding() {
    let findings = corpus_findings();
    assert!(!findings.iter().any(|f| f.file == "crates/core/src/lib.rs" && f.line == 20));
    assert!(findings
        .iter()
        .any(|f| f.file == "crates/core/src/lib.rs" && f.line == 16 && f.rule == "float-eq"));
    let unused: Vec<&Finding> = findings.iter().filter(|f| f.rule == "unused-waiver").collect();
    assert_eq!(unused.len(), 1);
    assert_eq!((unused[0].file.as_str(), unused[0].line), ("crates/core/src/lib.rs", 23));
}

/// Registry findings name the concrete problem, not just the rule.
#[test]
fn failpoint_messages_name_the_site() {
    let findings = corpus_findings();
    let msg = |line: u32, frag: &str| {
        assert!(
            findings.iter().any(|f| f.rule == "failpoint-registry"
                && f.line == line
                && f.message.contains(frag)),
            "no failpoint-registry finding at line {line} mentioning {frag:?}"
        );
    };
    msg(31, "rogue.site");
    msg(5, "duplicate");
    msg(6, "dead.site");
    msg(6, "never exercised");
}

/// The clean fixture workspace produces zero findings through the library API.
#[test]
fn clean_fixture_is_clean() {
    let ws = load_workspace(&fixture("clean")).expect("clean fixture loads");
    assert!(analyze(&ws).is_empty());
}

#[test]
fn binary_exits_one_on_corpus_and_zero_on_clean() {
    let bin = env!("CARGO_BIN_EXE_pta-analyzer");
    let bad = Command::new(bin).arg("--root").arg(fixture("ws")).output().expect("spawns");
    assert_eq!(bad.status.code(), Some(1));
    let text = String::from_utf8_lossy(&bad.stdout);
    assert!(text.contains("crates/core/src/lib.rs:4:7 no-panic-in-lib"));
    assert!(String::from_utf8_lossy(&bad.stderr).contains("20 finding(s)"));

    let ok = Command::new(bin).arg("--root").arg(fixture("clean")).output().expect("spawns");
    assert_eq!(
        ok.status.code(),
        Some(0),
        "clean fixture flagged:\n{}",
        String::from_utf8_lossy(&ok.stdout)
    );
}

/// `--format json` emits an array our own parser round-trips, one record per
/// finding, each carrying the full coordinate set.
#[test]
fn binary_json_output_is_machine_readable() {
    let bin = env!("CARGO_BIN_EXE_pta-analyzer");
    let out = Command::new(bin)
        .args(["--format", "json", "--root"])
        .arg(fixture("ws"))
        .output()
        .expect("spawns");
    assert_eq!(out.status.code(), Some(1));
    let doc = pta_analyzer::json::parse(&String::from_utf8_lossy(&out.stdout))
        .expect("analyzer emits valid JSON");
    let pta_analyzer::json::Value::Arr(_, items) = doc else { panic!("expected an array") };
    assert_eq!(items.len(), 20);
    for rec in &items {
        for key in ["file", "line", "col", "rule", "message"] {
            assert!(rec.get(key).is_some(), "finding record is missing key {key:?}");
        }
    }
}
