//! Offline stand-in for the [criterion](https://docs.rs/criterion) bench
//! harness. The build environment has no crates.io access, so the
//! workspace's `criterion` dependency resolves here (see
//! `[workspace.dependencies]` in the root manifest).
//!
//! Only the API surface the benches under `crates/bench/benches/` use is
//! provided: [`Criterion::benchmark_group`], [`BenchmarkGroup`] with
//! `sample_size`/`measurement_time`/`bench_function`/`bench_with_input`/
//! `finish`, [`BenchmarkId::new`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Measurement is a
//! plain wall-clock sampler: after one warm-up call per benchmark it
//! takes up to `sample_size` timed samples (stopping early once the
//! measurement-time budget is spent) and prints min/mean/max per sample.
//! No plotting, no statistics beyond that, no output files — swap in the
//! real crate unchanged once registry access exists (ROADMAP).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Harness entry point; one per `criterion_group!` expansion.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10, measurement_time: Duration::from_secs(2) }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }
}

/// A benchmark identifier: a function name plus a parameter rendering,
/// shown as `name/param`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a name and the parameter it was measured at.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self { id: format!("{name}/{parameter}") }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { id: name.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// A group of benchmarks sharing a name prefix and sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total measurement wall time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks a routine with no externally supplied input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, &mut |b| f(b));
        self
    }

    /// Benchmarks a routine against a borrowed input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.id, &mut |b| f(b, input));
        self
    }

    /// Ends the group (report flushing happens per benchmark already).
    pub fn finish(self) {}

    fn run(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        // One untimed warm-up call, then timed samples until either the
        // sample budget or the time budget runs out (always >= 1 sample).
        let mut b = Bencher { elapsed: Duration::ZERO };
        f(&mut b);
        let mut samples = Vec::with_capacity(self.sample_size);
        let started = Instant::now();
        for _ in 0..self.sample_size {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            samples.push(b.elapsed);
            if started.elapsed() >= self.measurement_time {
                break;
            }
        }
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let mean = samples.iter().sum::<Duration>() / samples.len().max(1) as u32;
        println!(
            "{}/{id:<40} time: [{} {} {}] ({} samples)",
            self.name,
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max),
            samples.len()
        );
    }
}

/// Runs and times the measured routine.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times one execution of `routine` (the sampling loop lives in the
    /// harness; real criterion batches iterations per sample instead).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        std::hint::black_box(out);
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if ns >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{ns} ns")
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Expands to a `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks_and_respects_budgets() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3).measurement_time(Duration::from_millis(50));
        let mut calls = 0u32;
        g.bench_function("counter", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7usize, |b, &x| b.iter(|| x * 2));
        g.finish();
        // 1 warm-up + up to 3 samples.
        assert!((2..=4).contains(&calls), "calls = {calls}");
    }

    #[test]
    fn benchmark_id_renders_name_slash_param() {
        assert_eq!(BenchmarkId::new("scan", 4000).id, "scan/4000");
    }
}
