//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this workspace ships
//! a minimal, deterministic implementation of the `rand` 0.9 API surface
//! the other crates use: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] methods `random`, `random_range`, `random_bool`.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — high quality for
//! workload generation, stable across platforms and releases (the real
//! `rand` makes no cross-version stream guarantee; we do, because dataset
//! generators promise determinism in their seed).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample of `T`'s standard distribution (`f64`/`f32` in
    /// `[0, 1)`, integers over their full range, fair `bool`).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from `range` (half-open or inclusive; integer or
    /// float). Panics on empty ranges, like `rand`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p = {p} is not a probability");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seeding constructors.
pub trait SeedableRng: Sized {
    /// Expands a 64-bit seed into a full generator state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a canonical "standard" distribution.
pub trait Standard: Sized {
    /// Draws one sample from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 random mantissa bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + (self.end - self.start) * <$t as Standard>::sample(rng)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                lo + (hi - lo) * <$t as Standard>::sample(rng)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    // `Rng` is blanket-implemented; pull `next_u64` through the supertrait.
    use super::RngCore;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i64 = rng.random_range(-300..600);
            assert!((-300..600).contains(&v));
            let w: i32 = rng.random_range(-2i32..=2);
            assert!((-2..=2).contains(&w));
            let u: usize = rng.random_range(0..17);
            assert!(u < 17);
            let f: f64 = rng.random_range(-0.1..0.1);
            assert!((-0.1..0.1).contains(&f));
            let unit: f64 = rng.random();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn random_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.15)).count();
        assert!((13_000..17_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn full_range_samples_cover_extremes_eventually() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut saw_high_bit = false;
        for _ in 0..1_000 {
            saw_high_bit |= rng.next_u64() >> 63 == 1;
        }
        assert!(saw_high_bit);
    }
}
