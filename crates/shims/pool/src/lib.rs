//! Scoped thread-pool shim for the PTA workspace — the parallel-execution
//! layer behind the DP row fills, the chunked CSV ingest, and the
//! Comparator fan-out.
//!
//! The build environment has no crates.io access, so this crate plays the
//! role `rayon` (or a long-lived `crossbeam` pool) would otherwise fill,
//! with the same replacement story as the `rand`/`criterion` shims: swap
//! it out unchanged once a registry exists (ROADMAP). Under the
//! workspace-wide `forbid(unsafe_code)` the only safe primitive for
//! borrowing worker threads is [`std::thread::scope`], so a [`Pool`] is a
//! *thread budget*, not a set of live threads: every [`Pool::map`] call
//! spawns its workers scoped to the call and joins them before
//! returning. For the millisecond-scale chunks the hot paths produce the
//! spawn cost is noise; the callers gate fan-out behind a minimum-work
//! threshold so tiny inputs never pay it.
//!
//! Guarantees:
//!
//! * **Deterministic order.** `map`/`try_map` return results in input
//!   order, and each job runs exactly once, whole, on one worker —
//!   scheduling affects only *which* worker runs a job, never the result.
//! * **Panic isolation.** Every job runs under
//!   [`std::panic::catch_unwind`]: a panicking job cannot poison pool
//!   state or take sibling jobs down with it. [`Pool::try_map`] surfaces
//!   each panic as a per-job [`JobPanic`]; [`Pool::map`] re-raises the
//!   first panicking job's original payload after the workers join.
//! * **No nested oversubscription.** A `map` issued from inside another
//!   `map`'s worker runs inline on that worker (see [`in_worker`]), so a
//!   Comparator fan-out that reaches the parallel DP does not multiply
//!   thread counts — and per-call wall-clock stamps stay honest.
//! * **One global knob.** [`default_threads`] reads `PTA_THREADS` once
//!   (falling back to [`std::thread::available_parallelism`]); a budget
//!   of 1 short-circuits to the plain sequential iterator. An invalid
//!   value (`0`, `banana`) warns once on stderr instead of being
//!   silently ignored.

use std::any::Any;
use std::cell::Cell;
use std::fmt;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

use pta_failpoints::fail_point;

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// True when the current thread is a pool worker; nested [`Pool::map`]
/// calls observe this and run inline instead of spawning again.
pub fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Resolves a `PTA_THREADS`-style string: `Some(n)` for an integer
/// `>= 1`, `None` (meaning "use the hardware default") otherwise.
fn parse_threads(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|s| s.trim().parse::<usize>().ok()).filter(|&n| n >= 1)
}

/// The process-wide default thread budget: `PTA_THREADS` if set to an
/// integer `>= 1`, otherwise [`std::thread::available_parallelism`]
/// (1 when even that is unknown). Read once and cached; a set-but-invalid
/// `PTA_THREADS` logs one warning to stderr before falling back.
pub fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        let raw = std::env::var("PTA_THREADS").ok();
        match parse_threads(raw.as_deref()) {
            Some(n) => n,
            None => {
                let fallback =
                    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
                if let Some(raw) = raw.as_deref().map(str::trim).filter(|s| !s.is_empty()) {
                    eprintln!(
                        "warning: ignoring invalid PTA_THREADS value {raw:?} \
                         (want an integer >= 1); using {fallback}"
                    );
                }
                fallback
            }
        }
    })
}

/// A job panicked inside [`Pool::try_map`]. Carries the panic payload
/// rendered as a message (`&str`/`String` payloads verbatim, anything
/// else a placeholder) so callers can degrade the job to a typed error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// The panic payload message.
    pub message: String,
}

impl JobPanic {
    /// Renders a caught panic payload into a `JobPanic`.
    pub fn from_payload(payload: &(dyn Any + Send)) -> Self {
        let message = if let Some(s) = payload.downcast_ref::<&'static str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        Self { message }
    }
}

impl fmt::Display for JobPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pool job panicked: {}", self.message)
    }
}

impl std::error::Error for JobPanic {}

type Payload = Box<dyn Any + Send + 'static>;

/// A thread budget for scoped fan-out. Cheap to copy; spawns nothing
/// until [`Pool::map`] runs with more than one thread's worth of work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    fn default() -> Self {
        Self::global()
    }
}

impl Pool {
    /// A pool with an explicit thread budget; `0` means "use
    /// [`default_threads`]" — the conventional spelling of "default"
    /// everywhere a `threads` knob is threaded through the workspace.
    pub fn new(threads: usize) -> Self {
        Self { threads: if threads == 0 { default_threads() } else { threads } }
    }

    /// The pool at the process-wide default budget (`PTA_THREADS`).
    pub fn global() -> Self {
        Self::new(0)
    }

    /// The resolved thread budget (always `>= 1`).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A [`std::thread::scope`] escape hatch for callers that need raw
    /// scoped spawning; prefer [`Pool::map`], which adds scheduling,
    /// ordering, and the nesting guard.
    pub fn scope<'env, F, T>(&self, f: F) -> T
    where
        F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> T,
    {
        std::thread::scope(f)
    }

    /// Applies `f` to every item and returns the results **in input
    /// order**. With a budget of 1, a single item, or when already on a
    /// pool worker, the jobs run on the current thread; otherwise
    /// `min(budget, items)` scoped workers drain the items via an atomic
    /// cursor (dynamic scheduling, so one slow job does not idle the
    /// rest of the pool).
    ///
    /// Items may borrow from the caller's stack — including disjoint
    /// `&mut` slices, which is how the DP row fill hands each job its
    /// own window of the output row.
    ///
    /// A panicking job is re-raised on the caller with its **original
    /// payload** — the first panicking job in input order — after the
    /// workers join; sibling jobs already in flight complete and no pool
    /// mutex is poisoned. Use [`Pool::try_map`] to observe panics
    /// per-job instead.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let mut first_panic: Option<Payload> = None;
        let mut out = Vec::with_capacity(items.len());
        for slot in self.run_caught(items, &f) {
            match slot {
                Ok(v) => out.push(v),
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
        out
    }

    /// Panic-isolating [`Pool::map`]: every job runs to completion (or
    /// panics) independently, and the result slot for a panicking job is
    /// `Err(JobPanic)` carrying the payload message instead of the panic
    /// unwinding through the pool. Results stay in input order.
    pub fn try_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<Result<R, JobPanic>>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        self.run_caught(items, &f)
            .into_iter()
            .map(|slot| slot.map_err(|payload| JobPanic::from_payload(payload.as_ref())))
            .collect()
    }

    /// Shared engine for `map`/`try_map`: runs every job under
    /// `catch_unwind` and returns per-slot outcomes in input order —
    /// deterministically, even when jobs panic, because all jobs run
    /// regardless of earlier panics. `AssertUnwindSafe` is sound here:
    /// the job owns its item, the pool holds no lock while `f` runs, and
    /// a panicking slot is reported — never read as a result.
    fn run_caught<T, R, F>(&self, items: Vec<T>, f: &F) -> Vec<Result<R, Payload>>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let run_one = |item: T| {
            catch_unwind(AssertUnwindSafe(|| {
                fail_point!("pool.worker");
                f(item)
            }))
        };
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 || in_worker() {
            return items.into_iter().map(run_one).collect();
        }
        let jobs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let slots: Vec<Mutex<Option<Result<R, Payload>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    IN_WORKER.with(|w| w.set(true));
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        // `run_one` catches panics, so these mutexes never
                        // poison; recover rather than unwind if that changes.
                        let item = jobs[i].lock().unwrap_or_else(PoisonError::into_inner).take();
                        // `fetch_add` hands each index to exactly one worker,
                        // so an already-taken job only means a logic change
                        // upstream — skip it rather than crash the pool.
                        let Some(item) = item else { continue };
                        *slots[i].lock().unwrap_or_else(PoisonError::into_inner) =
                            Some(run_one(item));
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner().unwrap_or_else(PoisonError::into_inner).unwrap_or_else(|| {
                    // Every slot is filled before `scope` joins; report an
                    // unfilled one as a job failure instead of crashing.
                    Err(Box::new("pool job slot was never filled") as Payload)
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing() {
        assert_eq!(parse_threads(None), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(Some("banana")), None);
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("1")), Some(1));
        assert_eq!(parse_threads(Some(" 8 ")), Some(8));
    }

    #[test]
    fn budgets_resolve() {
        assert!(default_threads() >= 1);
        assert_eq!(Pool::new(3).threads(), 3);
        assert_eq!(Pool::new(0).threads(), default_threads());
        assert!(Pool::global().threads() >= 1);
    }

    #[test]
    fn map_preserves_input_order() {
        for threads in [1, 2, 4, 16] {
            let pool = Pool::new(threads);
            let out = pool.map((0..100).collect::<Vec<_>>(), |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        let pool = Pool::new(4);
        assert_eq!(pool.map(Vec::<i32>::new(), |i| i), Vec::<i32>::new());
        assert_eq!(pool.map(vec![7], |i| i + 1), vec![8]);
    }

    #[test]
    fn jobs_may_hold_disjoint_mutable_slices() {
        let pool = Pool::new(3);
        let mut data = vec![0u32; 10];
        let (a, rest) = data.split_at_mut(3);
        let (b, c) = rest.split_at_mut(3);
        let jobs: Vec<(usize, &mut [u32])> = vec![(0, a), (3, b), (6, c)];
        let lens = pool.map(jobs, |(base, slice)| {
            for (k, v) in slice.iter_mut().enumerate() {
                *v = (base + k) as u32;
            }
            slice.len()
        });
        assert_eq!(lens, vec![3, 3, 4]);
        assert_eq!(data, (0u32..10).collect::<Vec<_>>());
    }

    #[test]
    fn nested_map_runs_inline_on_the_worker() {
        let pool = Pool::new(4);
        let nested = pool.map(vec![0usize; 8], |_| {
            assert!(in_worker());
            // The inner map must not spawn: its jobs stay on this worker.
            let inner = Pool::new(4).map(vec![(); 4], |()| std::thread::current().id());
            inner.iter().all(|id| *id == std::thread::current().id())
        });
        assert!(nested.into_iter().all(|ok| ok));
        assert!(!in_worker(), "flag must not leak back to the caller");
    }

    #[test]
    fn try_map_isolates_panics_per_job() {
        for threads in [1, 2, 4] {
            let pool = Pool::new(threads);
            let out = pool.try_map((0..16).collect::<Vec<i32>>(), |i| {
                if i % 5 == 3 {
                    panic!("job {i} exploded");
                }
                i * 2
            });
            assert_eq!(out.len(), 16, "threads={threads}");
            for (i, slot) in out.iter().enumerate() {
                if i % 5 == 3 {
                    let err = slot.as_ref().unwrap_err();
                    assert_eq!(err.message, format!("job {i} exploded"), "threads={threads}");
                } else {
                    assert_eq!(slot.as_ref().unwrap(), &((i as i32) * 2), "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn try_map_renders_non_string_payloads() {
        let out = Pool::new(1).try_map(vec![0], |_| -> i32 { std::panic::panic_any(42usize) });
        assert_eq!(out[0].as_ref().unwrap_err().message, "non-string panic payload");
    }

    #[test]
    fn map_reraises_the_first_panic_payload() {
        for threads in [1, 2, 4] {
            let pool = Pool::new(threads);
            let caught = catch_unwind(AssertUnwindSafe(|| {
                pool.map((0..8).collect::<Vec<i32>>(), |i| {
                    if i >= 2 {
                        panic!("boom at {i}");
                    }
                    i
                })
            }));
            let payload = caught.expect_err("map must propagate the panic");
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .expect("original String payload survives the pool");
            // Dynamic scheduling may reach any of jobs 2..8 first, but the
            // surfaced payload is the first *in input order* among them.
            assert_eq!(msg, "boom at 2", "threads={threads}");
        }
    }

    #[test]
    fn map_panic_leaves_no_poisoned_state_behind() {
        let pool = Pool::new(4);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            pool.map(vec![0usize; 8], |_| -> usize { panic!("poison probe") })
        }));
        // The pool value itself is trivially reusable (it is only a
        // budget), and a fresh map must run clean after the panic.
        assert_eq!(pool.map(vec![1, 2, 3], |i| i + 1), vec![2, 3, 4]);
        let ok = pool.try_map(vec![5], |i| i);
        assert_eq!(ok[0].as_ref().unwrap(), &5);
    }
}
