//! Failpoint injection harness, in the spirit of the `fail` crate (offline
//! stand-in: the build environment has no crates.io access).
//!
//! A *failpoint* is a named fault site compiled into production code. With
//! the `failpoints` cargo feature **off** (the default) every
//! [`fail_point!`] invocation expands to nothing — zero code, zero branches
//! on the hot paths. With the feature **on**, each invocation consults a
//! process-global registry and can be made to panic, sleep, run a callback,
//! or early-return a typed error, either programmatically ([`cfg`],
//! [`cfg_callback`]) or from the `FAILPOINTS` environment variable.
//!
//! Action grammar (a subset of the `fail` crate's):
//!
//! ```text
//! FAILPOINTS = point=action[;point=action...]
//! action     = [N*]kind[(arg)]
//! kind       = off | panic | return | delay
//! ```
//!
//! `N*` fires the action at most `N` times, then the point goes inert.
//! `panic(msg)` panics with `msg` as payload, `delay(ms)` sleeps,
//! `return(msg)` makes the two-argument form of [`fail_point!`] early-return
//! through its closure. Callbacks are programmatic-only.
//!
//! Injection points live in the pool workers (`pool.worker`), CSV chunk
//! parsing (`csv.chunk`), DP row fills (`dp.fill_row`), the comparator
//! fan-out (`comparator.method.<name>`), and the serve tier's network and
//! cache seams (`serve.accept`, `serve.read`, `serve.write`,
//! `serve.handler`, `serve.cache`); see `tests/fault_injection.rs` in the
//! facade crate for the suite that drives them.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock, PoisonError};

/// Central registry of every `fail_point!` site name in the workspace.
///
/// `pta-analyzer`'s `failpoint-registry` rule enforces the contract both
/// ways: every `fail_point!` call site must appear here exactly once, every
/// entry must match a live call site, and every entry must be exercised by
/// `tests/fault_injection.rs`. A trailing `*` marks a prefix entry for
/// sites whose name is built with `format!` (one entry covers the family).
pub const FAILPOINT_SITES: &[&str] = &[
    "pool.worker",
    "csv.chunk",
    "dp.fill_row",
    "comparator.method.*",
    "serve.accept",
    "serve.read",
    "serve.write",
    "serve.handler",
    "serve.cache",
];

/// What a triggered failpoint does.
#[derive(Clone)]
enum Action {
    /// Registered but inert (also the post-`N*` exhausted state).
    Off,
    /// Panic with the given payload message.
    Panic(String),
    /// Make the two-argument `fail_point!` form early-return `f(msg)`.
    Return(String),
    /// Sleep for the given number of milliseconds.
    Delay(u64),
    /// Run an arbitrary callback (programmatic only, e.g. "cancel the
    /// token the k-th time this row fill starts").
    Callback(std::sync::Arc<dyn Fn() + Send + Sync>),
}

impl fmt::Debug for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Off => write!(f, "off"),
            Action::Panic(m) => write!(f, "panic({m})"),
            Action::Return(m) => write!(f, "return({m})"),
            Action::Delay(ms) => write!(f, "delay({ms})"),
            Action::Callback(_) => write!(f, "callback"),
        }
    }
}

#[derive(Clone, Debug)]
struct Entry {
    action: Action,
    /// `Some(n)`: fire at most `n` more times (the `N*` prefix).
    remaining: Option<usize>,
}

fn registry() -> &'static Mutex<HashMap<String, Entry>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Entry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Error returned by [`cfg`] / [`FailScenario::setup`] on a malformed spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid failpoint spec: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn parse_action(spec: &str) -> Result<Entry, ParseError> {
    let spec = spec.trim();
    let (remaining, body) = match spec.split_once('*') {
        Some((count, rest)) => {
            let n = count
                .trim()
                .parse::<usize>()
                .map_err(|_| ParseError(format!("bad count in {spec:?}")))?;
            (Some(n), rest.trim())
        }
        None => (None, spec),
    };
    let (kind, arg) = match body.split_once('(') {
        Some((kind, rest)) => {
            let arg = rest
                .strip_suffix(')')
                .ok_or_else(|| ParseError(format!("unclosed argument in {spec:?}")))?;
            (kind.trim(), Some(arg))
        }
        None => (body, None),
    };
    let action = match kind {
        "off" => Action::Off,
        "panic" => Action::Panic(arg.unwrap_or("failpoint panic").to_string()),
        "return" => Action::Return(arg.unwrap_or("failpoint return").to_string()),
        "delay" => {
            let ms = arg
                .unwrap_or("")
                .trim()
                .parse::<u64>()
                .map_err(|_| ParseError(format!("bad delay in {spec:?}")))?;
            Action::Delay(ms)
        }
        other => return Err(ParseError(format!("unknown action kind {other:?}"))),
    };
    Ok(Entry { action, remaining })
}

/// Configures failpoint `name` from an action spec, e.g. `"panic(boom)"`,
/// `"delay(10)"`, `"2*return(bad row)"`, `"off"`.
pub fn cfg(name: impl Into<String>, spec: &str) -> Result<(), ParseError> {
    let entry = parse_action(spec)?;
    registry().lock().unwrap_or_else(PoisonError::into_inner).insert(name.into(), entry);
    Ok(())
}

/// Configures failpoint `name` to run `f` each time it is hit. The callback
/// runs inline at the fault site — keep it small and non-blocking.
pub fn cfg_callback(name: impl Into<String>, f: impl Fn() + Send + Sync + 'static) {
    let entry = Entry { action: Action::Callback(std::sync::Arc::new(f)), remaining: None };
    registry().lock().unwrap_or_else(PoisonError::into_inner).insert(name.into(), entry);
}

/// Removes the configuration for `name` (the point becomes a no-op).
pub fn remove(name: &str) {
    registry().lock().unwrap_or_else(PoisonError::into_inner).remove(name);
}

/// Removes every configured failpoint.
pub fn clear() {
    registry().lock().unwrap_or_else(PoisonError::into_inner).clear();
}

/// Names of currently configured failpoints (diagnostics).
pub fn list() -> Vec<String> {
    registry().lock().unwrap_or_else(PoisonError::into_inner).keys().cloned().collect()
}

/// Claims one firing of `name`, honoring the `N*` counter. Returns the
/// action to perform, or `None` when the point is unconfigured/exhausted.
fn claim(name: &str) -> Option<Action> {
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    let entry = reg.get_mut(name)?;
    if let Some(n) = entry.remaining.as_mut() {
        if *n == 0 {
            return None;
        }
        *n -= 1;
    }
    Some(entry.action.clone())
}

/// Evaluates the unit form of a failpoint: panics, delays, and callbacks
/// fire; `return` actions are ignored (there is nothing to return through).
/// Called by the expansion of `fail_point!(name)` — not directly.
#[doc(hidden)]
pub fn eval(name: &str) {
    match claim(name) {
        None | Some(Action::Off) | Some(Action::Return(_)) => {}
        // pta-lint: allow(no-panic-in-lib) — panicking *is* the configured
        // fault: the injected action exists to test panic isolation.
        Some(Action::Panic(msg)) => panic!("{msg}"),
        Some(Action::Delay(ms)) => std::thread::sleep(std::time::Duration::from_millis(ms)),
        Some(Action::Callback(f)) => f(),
    }
}

/// Evaluates the early-return form: like [`eval`], but a `return(msg)`
/// action yields `Some(msg)` for the call site to map into its error type.
#[doc(hidden)]
pub fn eval_return(name: &str) -> Option<String> {
    match claim(name) {
        None | Some(Action::Off) => None,
        // pta-lint: allow(no-panic-in-lib) — panicking *is* the configured
        // fault: the injected action exists to test panic isolation.
        Some(Action::Panic(msg)) => panic!("{msg}"),
        Some(Action::Delay(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            None
        }
        Some(Action::Callback(f)) => {
            f();
            None
        }
        Some(Action::Return(msg)) => Some(msg),
    }
}

/// RAII scope for env-driven failpoint runs: `setup` parses `FAILPOINTS`
/// into the registry, `Drop` clears it. Tests sharing one process must
/// serialize scenarios (the registry is global).
#[derive(Debug)]
pub struct FailScenario {
    _private: (),
}

impl FailScenario {
    /// Parses the `FAILPOINTS` environment variable (`point=action;...`)
    /// into the global registry, replacing whatever was configured.
    pub fn setup() -> Result<Self, ParseError> {
        clear();
        if let Ok(spec) = std::env::var("FAILPOINTS") {
            for pair in spec.split(';').filter(|s| !s.trim().is_empty()) {
                let (name, action) = pair
                    .split_once('=')
                    .ok_or_else(|| ParseError(format!("missing '=' in {pair:?}")))?;
                cfg(name.trim(), action)?;
            }
        }
        Ok(Self { _private: () })
    }

    /// Explicit teardown (also runs on drop).
    pub fn teardown(self) {}
}

impl Drop for FailScenario {
    fn drop(&mut self) {
        clear();
    }
}

/// Marks a named fault site.
///
/// `fail_point!("name")` — the unit form; `panic`/`delay`/callback actions
/// fire here. `fail_point!("name", |msg| expr)` — the early-return form;
/// a `return(msg)` action makes the enclosing function return `expr`
/// (typically an `Err` built from `msg`).
///
/// With the `failpoints` feature off both forms expand to nothing: the
/// arguments are not evaluated and no code is generated.
#[cfg(feature = "failpoints")]
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {{
        $crate::eval(&*$name);
    }};
    ($name:expr, $ret:expr) => {{
        if let Some(__fp_msg) = $crate::eval_return(&*$name) {
            #[allow(clippy::redundant_closure_call)]
            return ($ret)(__fp_msg);
        }
    }};
}

/// Disabled expansion: no code, arguments unevaluated.
#[cfg(not(feature = "failpoints"))]
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {{}};
    ($name:expr, $ret:expr) => {{}};
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; tests in this module serialize on a
    // lock so their configurations cannot interleave.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_action("explode").is_err());
        assert!(parse_action("delay(abc)").is_err());
        assert!(parse_action("x*panic").is_err());
        assert!(parse_action("panic(unclosed").is_err());
    }

    #[test]
    fn unconfigured_point_is_inert() {
        let _g = serial();
        clear();
        eval("tests.nothing");
        assert_eq!(eval_return("tests.nothing"), None);
    }

    #[test]
    fn return_action_yields_message() {
        let _g = serial();
        clear();
        cfg("tests.ret", "return(bad row)").unwrap();
        assert_eq!(eval_return("tests.ret").as_deref(), Some("bad row"));
        // The unit form ignores `return` actions.
        eval("tests.ret");
        remove("tests.ret");
        assert_eq!(eval_return("tests.ret"), None);
    }

    #[test]
    fn counted_action_exhausts() {
        let _g = serial();
        clear();
        cfg("tests.count", "2*return(x)").unwrap();
        assert!(eval_return("tests.count").is_some());
        assert!(eval_return("tests.count").is_some());
        assert_eq!(eval_return("tests.count"), None);
        clear();
    }

    #[test]
    fn panic_action_panics_with_payload() {
        let _g = serial();
        clear();
        cfg("tests.panic", "panic(kaboom)").unwrap();
        let caught = std::panic::catch_unwind(|| eval("tests.panic"));
        clear();
        let payload = caught.unwrap_err();
        let msg = payload.downcast_ref::<String>().cloned().unwrap_or_default();
        assert_eq!(msg, "kaboom");
    }

    #[test]
    fn callback_runs_each_hit() {
        let _g = serial();
        clear();
        let hits = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let h = hits.clone();
        cfg_callback("tests.cb", move || {
            h.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        });
        eval("tests.cb");
        eval("tests.cb");
        clear();
        assert_eq!(hits.load(std::sync::atomic::Ordering::SeqCst), 2);
    }

    #[test]
    fn scenario_round_trip() {
        let _g = serial();
        clear();
        // No FAILPOINTS in the test env: setup just clears.
        let sc = FailScenario::setup().unwrap();
        assert!(list().is_empty());
        cfg("tests.scoped", "delay(0)").unwrap();
        sc.teardown();
        assert!(list().is_empty());
    }
}
