//! Sequential relations: the compact form of an ITA result.
//!
//! A (temporal) relation is *sequential* when, within each aggregation
//! group, tuple timestamps never intersect (§3). Every ITA result is
//! sequential, and PTA preserves sequentiality because it only merges
//! *adjacent* tuples (Def. 2): same group, no temporal gap.
//!
//! [`SequentialRelation`] stores the `n` tuples sorted by group and,
//! within each group, chronologically; the `p` aggregate values per tuple
//! live in one row-major `n × p` buffer, which keeps prefix-sum
//! construction (§5.2) and merging cache-friendly.

use std::fmt;
use std::ops::Range;

use crate::error::TemporalError;
use crate::group::{GroupId, GroupKey};
use crate::interval::TimeInterval;

/// Group id and timestamp of one sequential-relation tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqEntry {
    /// The tuple's aggregation group.
    pub group: GroupId,
    /// The tuple's timestamp.
    pub interval: TimeInterval,
}

/// An ITA-result-shaped relation: tuples sorted by aggregation group and
/// chronologically within groups, with `p` numeric aggregate values each.
#[derive(Debug, Clone, PartialEq)]
pub struct SequentialRelation {
    p: usize,
    entries: Vec<SeqEntry>,
    values: Vec<f64>,
    group_keys: Vec<GroupKey>,
}

impl SequentialRelation {
    /// Creates an empty relation with `p` aggregate dimensions and a single
    /// anonymous group.
    pub fn empty(p: usize) -> Self {
        Self { p, entries: Vec::new(), values: Vec::new(), group_keys: vec![GroupKey::empty()] }
    }

    /// Builds a single-group relation from a regular time series: row `t`
    /// becomes the tuple with timestamp `[t0 + t, t0 + t]` and the `p`
    /// values of that row. This is how the paper feeds UCR time-series data
    /// to PTA (§7.1: "we replace the timestamp by a validity interval of
    /// length one").
    pub fn from_time_series(p: usize, t0: i64, rows: &[f64]) -> Result<Self, TemporalError> {
        if p == 0 || !rows.len().is_multiple_of(p) {
            return Err(TemporalError::DimensionMismatch { got: rows.len(), expected: p.max(1) });
        }
        let mut b = SequentialBuilder::with_capacity(p, rows.len() / p);
        for (i, row) in rows.chunks_exact(p).enumerate() {
            b.push(GroupKey::empty(), TimeInterval::instant(t0 + i as i64)?, row)?;
        }
        b.finish();
        Ok(b.build())
    }

    /// Number of tuples `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the relation has no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of aggregate dimensions `p`.
    #[inline]
    pub fn dims(&self) -> usize {
        self.p
    }

    /// Group id and timestamp of tuple `i`.
    #[inline]
    pub fn entry(&self, i: usize) -> SeqEntry {
        self.entries[i]
    }

    /// All entries, in (group, time) order.
    #[inline]
    pub fn entries(&self) -> &[SeqEntry] {
        &self.entries
    }

    /// The timestamp of tuple `i`.
    #[inline]
    pub fn interval(&self, i: usize) -> TimeInterval {
        self.entries[i].interval
    }

    /// The group id of tuple `i`.
    #[inline]
    pub fn group(&self, i: usize) -> GroupId {
        self.entries[i].group
    }

    /// The `p` aggregate values of tuple `i`.
    #[inline]
    pub fn values(&self, i: usize) -> &[f64] {
        &self.values[i * self.p..(i + 1) * self.p]
    }

    /// Aggregate value `d` of tuple `i`.
    #[inline]
    pub fn value(&self, i: usize, d: usize) -> f64 {
        self.values[i * self.p + d]
    }

    /// The raw row-major `n × p` value buffer.
    #[inline]
    pub fn raw_values(&self) -> &[f64] {
        &self.values
    }

    /// The interned group keys, indexed by [`GroupId`].
    pub fn group_keys(&self) -> &[GroupKey] {
        &self.group_keys
    }

    /// The key of group `id`.
    pub fn group_key(&self, id: GroupId) -> Result<&GroupKey, TemporalError> {
        self.group_keys.get(id as usize).ok_or(TemporalError::UnknownGroup(id))
    }

    /// Are tuples `i` and `i + 1` adjacent (`s_i ≺ s_{i+1}`, Def. 2)?
    ///
    /// Adjacent means: same aggregation group and `s_i.te + 1 = s_{i+1}.tb`.
    /// Only adjacent tuples may be merged by PTA.
    #[inline]
    pub fn adjacent(&self, i: usize) -> bool {
        debug_assert!(i + 1 < self.entries.len());
        let (a, b) = (&self.entries[i], &self.entries[i + 1]);
        a.group == b.group && a.interval.meets(&b.interval)
    }

    /// The paper's gap vector `G`: the 0-based indices `i` such that tuples
    /// `i` and `i + 1` are *not* adjacent, in increasing order. (The paper
    /// stores 1-based positions `l` with `s_l ⊀ s_{l+1}`; our index `i`
    /// equals `l − 1`.)
    pub fn gap_vector(&self) -> Vec<usize> {
        (0..self.entries.len().saturating_sub(1)).filter(|&i| !self.adjacent(i)).collect()
    }

    /// The smallest size any reduction can reach: `cmin = |s| − #adjacent
    /// pairs`, equivalently the number of maximal runs of adjacent tuples.
    pub fn cmin(&self) -> usize {
        if self.entries.is_empty() {
            return 0;
        }
        self.gap_vector().len() + 1
    }

    /// The maximal runs of pairwise-adjacent tuples ("segments"), as index
    /// ranges. Merging never crosses a segment boundary.
    pub fn segments(&self) -> Vec<Range<usize>> {
        let n = self.entries.len();
        if n == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut start = 0;
        for i in 0..n - 1 {
            if !self.adjacent(i) {
                out.push(start..i + 1);
                start = i + 1;
            }
        }
        out.push(start..n);
        out
    }

    /// Sum of tuple timestamp lengths — the number of (group, chronon)
    /// cells the relation covers. This weights the SSE error measure.
    pub fn total_duration(&self) -> u64 {
        self.entries.iter().map(|e| e.interval.len()).sum()
    }

    /// Clones the tuple range `range` into a new relation (group table is
    /// shared). Used by the evaluation to carve fixed-size subsets out of a
    /// dataset as the paper does in Figs. 14(b) and 18.
    pub fn slice(&self, range: Range<usize>) -> SequentialRelation {
        SequentialRelation {
            p: self.p,
            entries: self.entries[range.clone()].to_vec(),
            values: self.values[range.start * self.p..range.end * self.p].to_vec(),
            group_keys: self.group_keys.clone(),
        }
    }

    /// Checks the sequentiality invariant over the stored entries, returning
    /// the first violation. `O(n)`; intended for tests and debug assertions.
    pub fn validate(&self) -> Result<(), TemporalError> {
        for i in 1..self.entries.len() {
            let (a, b) = (&self.entries[i - 1], &self.entries[i]);
            if b.group < a.group {
                return Err(TemporalError::NonSequential {
                    index: i,
                    reason: format!("group {} follows group {}", b.group, a.group),
                });
            }
            if b.group == a.group && b.interval.start() <= a.interval.end() {
                return Err(TemporalError::NonSequential {
                    index: i,
                    reason: format!(
                        "interval {} starts before predecessor {} ends",
                        b.interval, a.interval
                    ),
                });
            }
        }
        for (i, e) in self.entries.iter().enumerate() {
            if e.group as usize >= self.group_keys.len() {
                return Err(TemporalError::NonSequential {
                    index: i,
                    reason: format!("group id {} has no interned key", e.group),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for SequentialRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "sequential relation: n = {}, p = {}", self.len(), self.p)?;
        for i in 0..self.len() {
            let e = &self.entries[i];
            write!(f, "  {} ", self.group_keys[e.group as usize])?;
            for d in 0..self.p {
                write!(f, "{:.2} ", self.value(i, d))?;
            }
            writeln!(f, "{}", e.interval)?;
        }
        Ok(())
    }
}

/// Incremental builder enforcing the sequential-relation invariant.
///
/// Rows must arrive sorted: all rows of one group consecutively (groups in
/// first-seen order) and chronologically, without overlaps, within each
/// group. This is exactly the order ITA produces.
#[derive(Debug)]
pub struct SequentialBuilder {
    p: usize,
    entries: Vec<SeqEntry>,
    values: Vec<f64>,
    group_keys: Vec<GroupKey>,
    ids: std::collections::HashMap<GroupKey, GroupId>,
    finished: bool,
}

impl SequentialBuilder {
    /// Creates a builder for `p`-dimensional rows.
    pub fn new(p: usize) -> Self {
        Self {
            p,
            entries: Vec::new(),
            values: Vec::new(),
            group_keys: Vec::new(),
            ids: std::collections::HashMap::new(),
            finished: false,
        }
    }

    /// Pre-allocates room for `n` rows.
    pub fn with_capacity(p: usize, n: usize) -> Self {
        let mut b = Self::new(p);
        b.entries.reserve(n);
        b.values.reserve(n * p);
        b
    }

    /// Appends one row. Fails when the dimensionality, value finiteness or
    /// the (group, time) ordering invariant is violated.
    pub fn push(
        &mut self,
        key: GroupKey,
        interval: TimeInterval,
        values: &[f64],
    ) -> Result<(), TemporalError> {
        if values.len() != self.p {
            return Err(TemporalError::DimensionMismatch { got: values.len(), expected: self.p });
        }
        let index = self.entries.len();
        for (d, v) in values.iter().enumerate() {
            if !v.is_finite() {
                return Err(TemporalError::NonFiniteValue {
                    context: format!("row {index}, dimension {d}"),
                });
            }
        }
        let group = match self.ids.get(&key) {
            Some(&id) => {
                if let Some(last) = self.entries.last() {
                    if last.group != id {
                        return Err(TemporalError::NonSequential {
                            index,
                            reason: format!("group {key} reappears after another group"),
                        });
                    }
                    if interval.start() <= last.interval.end() {
                        return Err(TemporalError::NonSequential {
                            index,
                            reason: format!(
                                "interval {} starts before predecessor {} ends",
                                interval, last.interval
                            ),
                        });
                    }
                }
                id
            }
            None => {
                let id = self.group_keys.len() as GroupId;
                self.group_keys.push(key.clone());
                self.ids.insert(key, id);
                id
            }
        };
        self.entries.push(SeqEntry { group, interval });
        self.values.extend_from_slice(values);
        Ok(())
    }

    /// Number of rows pushed so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no rows have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Marks the builder complete (no-op today; kept so streaming producers
    /// can signal end-of-input explicitly).
    pub fn finish(&mut self) {
        self.finished = true;
    }

    /// Finalises the relation.
    pub fn build(self) -> SequentialRelation {
        let group_keys =
            if self.group_keys.is_empty() { vec![GroupKey::empty()] } else { self.group_keys };
        SequentialRelation { p: self.p, entries: self.entries, values: self.values, group_keys }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn key(s: &str) -> GroupKey {
        GroupKey::new(vec![Value::str(s)])
    }

    fn iv(a: i64, b: i64) -> TimeInterval {
        TimeInterval::new(a, b).unwrap()
    }

    /// The ITA result of the paper's running example, Fig. 1(c).
    fn fig1c() -> SequentialRelation {
        let mut b = SequentialBuilder::new(1);
        b.push(key("A"), iv(1, 2), &[800.0]).unwrap();
        b.push(key("A"), iv(3, 3), &[600.0]).unwrap();
        b.push(key("A"), iv(4, 4), &[500.0]).unwrap();
        b.push(key("A"), iv(5, 6), &[350.0]).unwrap();
        b.push(key("A"), iv(7, 7), &[300.0]).unwrap();
        b.push(key("B"), iv(4, 5), &[500.0]).unwrap();
        b.push(key("B"), iv(7, 8), &[500.0]).unwrap();
        b.build()
    }

    #[test]
    fn running_example_shape() {
        let s = fig1c();
        assert_eq!(s.len(), 7);
        assert_eq!(s.dims(), 1);
        s.validate().unwrap();
        // Example 2: s1 ≺ s2 ≺ s3 ≺ s4 ≺ s5, s5 ⊀ s6, s6 ⊀ s7.
        assert!(s.adjacent(0) && s.adjacent(1) && s.adjacent(2) && s.adjacent(3));
        assert!(!s.adjacent(4) && !s.adjacent(5));
        // Example 13: G = <5, 6> in 1-based positions = <4, 5> 0-based.
        assert_eq!(s.gap_vector(), vec![4, 5]);
        // Running example: cmin = 7 − 4 = 3.
        assert_eq!(s.cmin(), 3);
        assert_eq!(s.segments(), vec![0..5, 5..6, 6..7]);
        assert_eq!(s.total_duration(), 2 + 1 + 1 + 2 + 1 + 2 + 2);
    }

    #[test]
    fn builder_rejects_wrong_dimension() {
        let mut b = SequentialBuilder::new(2);
        let err = b.push(key("A"), iv(1, 2), &[1.0]).unwrap_err();
        assert!(matches!(err, TemporalError::DimensionMismatch { got: 1, expected: 2 }));
    }

    #[test]
    fn builder_rejects_non_finite() {
        let mut b = SequentialBuilder::new(1);
        assert!(b.push(key("A"), iv(1, 2), &[f64::NAN]).is_err());
    }

    #[test]
    fn builder_rejects_overlap_within_group() {
        let mut b = SequentialBuilder::new(1);
        b.push(key("A"), iv(1, 4), &[1.0]).unwrap();
        let err = b.push(key("A"), iv(4, 6), &[2.0]).unwrap_err();
        assert!(matches!(err, TemporalError::NonSequential { index: 1, .. }));
    }

    #[test]
    fn builder_rejects_group_interleaving() {
        let mut b = SequentialBuilder::new(1);
        b.push(key("A"), iv(1, 2), &[1.0]).unwrap();
        b.push(key("B"), iv(1, 2), &[1.0]).unwrap();
        let err = b.push(key("A"), iv(3, 4), &[1.0]).unwrap_err();
        assert!(matches!(err, TemporalError::NonSequential { index: 2, .. }));
    }

    #[test]
    fn builder_allows_gaps_and_touching_values() {
        let mut b = SequentialBuilder::new(1);
        b.push(key("A"), iv(1, 2), &[1.0]).unwrap();
        b.push(key("A"), iv(5, 6), &[1.0]).unwrap();
        let s = b.build();
        assert!(!s.adjacent(0));
        assert_eq!(s.cmin(), 2);
    }

    #[test]
    fn time_series_construction() {
        let s = SequentialRelation::from_time_series(2, 10, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.interval(0), iv(10, 10));
        assert_eq!(s.interval(1), iv(11, 11));
        assert_eq!(s.values(1), &[3.0, 4.0]);
        assert!(s.adjacent(0));
        assert!(SequentialRelation::from_time_series(2, 0, &[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn slicing_preserves_values() {
        let s = fig1c();
        let t = s.slice(2..5);
        assert_eq!(t.len(), 3);
        assert_eq!(t.value(0, 0), 500.0);
        assert_eq!(t.interval(2), iv(7, 7));
        t.validate().unwrap();
    }

    #[test]
    fn empty_relation() {
        let s = SequentialRelation::empty(3);
        assert_eq!(s.len(), 0);
        assert_eq!(s.cmin(), 0);
        assert!(s.segments().is_empty());
        s.validate().unwrap();
    }
}
