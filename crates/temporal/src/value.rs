//! Attribute values and their domains.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::TemporalError;

/// The domain (type) of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float (NaN is rejected at ingestion).
    Float,
    /// Interned UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

impl DataType {
    /// Human-readable name used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "Int",
            DataType::Float => "Float",
            DataType::Str => "Str",
            DataType::Bool => "Bool",
        }
    }
}

/// A single attribute value.
///
/// Values are used both as data and as grouping keys, so they implement
/// `Eq`/`Hash`. To make floats hashable we reject NaN at the [`Value::float`]
/// constructor and normalise `-0.0` to `0.0`.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// Finite 64-bit float.
    Float(f64),
    /// Shared string (cheap to clone into group keys).
    Str(Arc<str>),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Creates a float value, rejecting NaN and infinities so `Value` can be
    /// used as a hashable grouping key and aggregates stay well defined.
    pub fn float(v: f64) -> Result<Self, TemporalError> {
        if v.is_finite() {
            Ok(Value::Float(if v == 0.0 { 0.0 } else { v }))
        } else {
            Err(TemporalError::NonFiniteValue { context: format!("float literal {v}") })
        }
    }

    /// Creates a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// The value's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
            Value::Bool(_) => DataType::Bool,
        }
    }

    /// Numeric view used by aggregate functions; `None` for non-numeric
    /// values.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Bool(_) | Value::Str(_) => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            // Both values are finite by construction, so bit equality modulo
            // the normalised -0.0 is plain equality.
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order used to sort aggregation groups deterministically:
    /// values order within their type; across types the order is
    /// `Int < Float < Str < Bool` (arbitrary but fixed).
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Int(_) => 0,
                Value::Float(_) => 1,
                Value::Str(_) => 2,
                Value::Bool(_) => 3,
            }
        }
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(v) => {
                0u8.hash(state);
                v.hash(state);
            }
            Value::Float(v) => {
                1u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Str(v) => {
                2u8.hash(state);
                v.hash(state);
            }
            Value::Bool(v) => {
                3u8.hash(state);
                v.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn float_constructor_rejects_non_finite() {
        assert!(Value::float(f64::NAN).is_err());
        assert!(Value::float(f64::INFINITY).is_err());
        assert!(Value::float(1.5).is_ok());
    }

    #[test]
    fn negative_zero_is_normalised() {
        let a = Value::float(0.0).unwrap();
        let b = Value::float(-0.0).unwrap();
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn cross_type_values_never_compare_equal() {
        assert_ne!(Value::Int(1), Value::float(1.0).unwrap());
        assert_ne!(Value::Bool(true), Value::Int(1));
    }

    #[test]
    fn numeric_view() {
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::float(2.5).unwrap().as_f64(), Some(2.5));
        assert_eq!(Value::str("x").as_f64(), None);
    }

    #[test]
    fn display_renders_raw_values() {
        assert_eq!(Value::str("John").to_string(), "John");
        assert_eq!(Value::Int(800).to_string(), "800");
    }
}
