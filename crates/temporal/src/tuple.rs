//! Temporal tuples.

use std::fmt;

use crate::interval::TimeInterval;
use crate::value::Value;

/// A tuple `r = (v1, ..., vm, t)` over a temporal relation schema: attribute
/// values plus a validity interval.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    values: Vec<Value>,
    interval: TimeInterval,
}

impl Tuple {
    /// Creates a tuple. Arity/type checking happens when the tuple is pushed
    /// into a [`crate::TemporalRelation`], which knows the schema.
    pub fn new(values: Vec<Value>, interval: TimeInterval) -> Self {
        Self { values, interval }
    }

    /// The attribute values in schema order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The value of attribute `index` (`r.A` in the paper).
    pub fn value(&self, index: usize) -> &Value {
        &self.values[index]
    }

    /// The validity interval (`r.T`).
    pub fn interval(&self) -> TimeInterval {
        self.interval
    }

    /// Projects the tuple onto the attributes at `indices` (`r.A` for an
    /// attribute set `A`), cloning the selected values.
    pub fn project(&self, indices: &[usize]) -> Vec<Value> {
        indices.iter().map(|&i| self.values[i].clone()).collect()
    }

    /// Consumes the tuple, returning its parts.
    pub fn into_parts(self) -> (Vec<Value>, TimeInterval) {
        (self.values, self.interval)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ") {}", self.interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_selects_and_reorders() {
        let t = Tuple::new(
            vec![Value::str("John"), Value::str("A"), Value::Int(800)],
            TimeInterval::new(1, 4).unwrap(),
        );
        assert_eq!(t.project(&[2, 0]), vec![Value::Int(800), Value::str("John")]);
    }

    #[test]
    fn display_shows_values_and_interval() {
        let t =
            Tuple::new(vec![Value::str("A"), Value::Int(800)], TimeInterval::new(1, 2).unwrap());
        assert_eq!(t.to_string(), "(A, 800) [1, 2]");
    }
}
