//! The coalescing operator.
//!
//! Coalescing (Böhlen, Snodgrass, Soo, VLDB 1996) merges value-equivalent
//! tuples whose timestamps overlap or meet into tuples over maximal
//! intervals. ITA (Def. 1) applies it as its final step so that result
//! tuples cover maximal periods of constant aggregate values.

use std::collections::HashMap;

use crate::interval::TimeInterval;
use crate::relation::TemporalRelation;
use crate::tuple::Tuple;
use crate::value::Value;

/// Coalesces `relation`: value-equivalent tuples with overlapping or
/// adjacent (meeting) timestamps are replaced by tuples over maximal
/// intervals. The output is sorted by value-equivalence class discovery
/// order and chronologically within each class.
pub fn coalesce(relation: &TemporalRelation) -> TemporalRelation {
    let mut classes: HashMap<Vec<Value>, Vec<TimeInterval>> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new();
    for t in relation.iter() {
        let key = t.values().to_vec();
        let entry = classes.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            Vec::new()
        });
        entry.push(t.interval());
    }

    let mut out = TemporalRelation::new(relation.schema().clone());
    for key in order {
        let Some(mut intervals) = classes.remove(&key) else { continue };
        intervals.sort_by_key(|iv| (iv.start(), iv.end()));
        let mut merged: Vec<TimeInterval> = Vec::with_capacity(intervals.len());
        for iv in intervals.iter() {
            match merged.last_mut() {
                Some(last) if iv.start() <= last.end().saturating_add(1) => {
                    *last = last.span(iv);
                }
                _ => merged.push(*iv),
            }
        }
        for iv in merged {
            // pta-lint: allow(no-panic-in-lib) — key and values come from this
            // relation's own tuples, so the schema re-check cannot fail.
            out.push(key.clone(), iv).expect("coalesced tuple matches schema");
        }
    }
    out
}

/// Returns `true` when `relation` is already coalesced: no two
/// value-equivalent tuples overlap or meet.
pub fn is_coalesced(relation: &TemporalRelation) -> bool {
    let tuples: Vec<&Tuple> = relation.iter().collect();
    for (i, a) in tuples.iter().enumerate() {
        for b in &tuples[i + 1..] {
            if a.values() == b.values()
                && (a.interval().overlaps(&b.interval())
                    || a.interval().meets(&b.interval())
                    || b.interval().meets(&a.interval()))
            {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    fn rel(rows: &[(&str, i64, i64)]) -> TemporalRelation {
        let schema = Schema::of(&[("K", DataType::Str)]).unwrap();
        let mut r = TemporalRelation::new(schema);
        for (k, a, b) in rows {
            r.push(vec![Value::str(*k)], TimeInterval::new(*a, *b).unwrap()).unwrap();
        }
        r
    }

    #[test]
    fn merges_meeting_intervals() {
        let r = rel(&[("x", 1, 2), ("x", 3, 5)]);
        let c = coalesce(&r);
        assert_eq!(c.len(), 1);
        assert_eq!(c.tuples()[0].interval(), TimeInterval::new(1, 5).unwrap());
    }

    #[test]
    fn merges_overlapping_intervals() {
        let r = rel(&[("x", 1, 4), ("x", 3, 9)]);
        let c = coalesce(&r);
        assert_eq!(c.len(), 1);
        assert_eq!(c.tuples()[0].interval(), TimeInterval::new(1, 9).unwrap());
    }

    #[test]
    fn keeps_gapped_intervals_apart() {
        let r = rel(&[("x", 1, 2), ("x", 4, 5)]);
        let c = coalesce(&r);
        assert_eq!(c.len(), 2);
        assert!(is_coalesced(&c));
    }

    #[test]
    fn distinguishes_values() {
        let r = rel(&[("x", 1, 2), ("y", 3, 4)]);
        let c = coalesce(&r);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn chains_of_meeting_intervals_collapse() {
        let r = rel(&[("x", 5, 6), ("x", 1, 2), ("x", 3, 4)]);
        let c = coalesce(&r);
        assert_eq!(c.len(), 1);
        assert_eq!(c.tuples()[0].interval(), TimeInterval::new(1, 6).unwrap());
    }

    #[test]
    fn detects_uncoalesced_input() {
        assert!(!is_coalesced(&rel(&[("x", 1, 3), ("x", 4, 5)])));
        assert!(is_coalesced(&rel(&[("x", 1, 3), ("x", 5, 5)])));
    }
}
