//! Error types for the temporal data model, plus the [`CommonError`]
//! vocabulary shared by every crate in the workspace.

use std::fmt;

use crate::chronon::Chronon;

/// Failure modes that recur across the workspace's layers.
///
/// Before the error unification, `invalid parameter`, `not applicable`
/// and `empty input` were each re-declared (with slightly different
/// shapes and wording) by the ita, core and baselines crates. They now
/// live here, in the bottom layer, and every crate error embeds them via
/// a `Common` variant — so the facade, tests and callers can classify
/// failures uniformly with [`CommonError::is_invalid_parameter`] &co.
/// regardless of which layer raised them.
#[derive(Debug, Clone, PartialEq)]
pub enum CommonError {
    /// A caller-supplied parameter is outside its domain.
    InvalidParameter {
        /// Which parameter (e.g. `"error bound"`, `"weights"`).
        what: &'static str,
        /// Explanation of the violation.
        reason: String,
    },
    /// The operation is well-formed but undefined for this input (the
    /// paper's "n/a" cells, §7.2.2).
    NotApplicable {
        /// Why the input is outside the method's domain.
        reason: String,
    },
    /// A required input collection was empty.
    EmptyInput {
        /// Which input (e.g. `"span list"`).
        what: &'static str,
    },
}

impl CommonError {
    /// Shorthand constructor for [`CommonError::InvalidParameter`].
    pub fn invalid_parameter(what: &'static str, reason: impl Into<String>) -> Self {
        Self::InvalidParameter { what, reason: reason.into() }
    }

    /// Shorthand constructor for [`CommonError::NotApplicable`].
    pub fn not_applicable(reason: impl Into<String>) -> Self {
        Self::NotApplicable { reason: reason.into() }
    }

    /// Shorthand constructor for [`CommonError::EmptyInput`].
    pub fn empty_input(what: &'static str) -> Self {
        Self::EmptyInput { what }
    }

    /// Whether this is an invalid-parameter failure.
    pub fn is_invalid_parameter(&self) -> bool {
        matches!(self, Self::InvalidParameter { .. })
    }

    /// Whether this is a not-applicable failure.
    pub fn is_not_applicable(&self) -> bool {
        matches!(self, Self::NotApplicable { .. })
    }

    /// Whether this is an empty-input failure.
    pub fn is_empty_input(&self) -> bool {
        matches!(self, Self::EmptyInput { .. })
    }
}

impl fmt::Display for CommonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter { what, reason } => {
                write!(f, "invalid {what}: {reason}")
            }
            Self::NotApplicable { reason } => write!(f, "method not applicable: {reason}"),
            Self::EmptyInput { what } => write!(f, "empty {what}"),
        }
    }
}

impl std::error::Error for CommonError {}

/// Errors raised while constructing or validating temporal data.
#[derive(Debug, Clone, PartialEq)]
pub enum TemporalError {
    /// An interval was constructed with `start > end`.
    InvertedInterval {
        /// Requested start chronon.
        start: Chronon,
        /// Requested end chronon.
        end: Chronon,
    },
    /// An interval end point exceeds the representable maximum.
    IntervalOutOfRange {
        /// Requested start chronon.
        start: Chronon,
        /// Requested end chronon.
        end: Chronon,
    },
    /// A floating-point attribute or aggregate value was not finite.
    NonFiniteValue {
        /// Human-readable location of the offending value.
        context: String,
    },
    /// Two attributes in one schema share a name.
    DuplicateAttribute(String),
    /// An attribute name was not found in the schema.
    UnknownAttribute(String),
    /// A tuple's value count does not match the schema's attribute count.
    ArityMismatch {
        /// Number of values supplied.
        got: usize,
        /// Number of attributes the schema expects.
        expected: usize,
    },
    /// A value's type does not match the attribute's declared type.
    TypeMismatch {
        /// Attribute whose domain was violated.
        attribute: String,
        /// Declared type name.
        expected: &'static str,
        /// Supplied type name.
        got: &'static str,
    },
    /// Rows pushed into a [`crate::SequentialBuilder`] violate the
    /// sequential-relation invariant (sorted by group, chronological and
    /// non-overlapping within each group).
    NonSequential {
        /// Index of the offending row.
        index: usize,
        /// Explanation of the violated ordering rule.
        reason: String,
    },
    /// A row carries a different number of aggregate values than the
    /// relation's dimensionality `p`.
    DimensionMismatch {
        /// Number of values supplied.
        got: usize,
        /// Dimensionality `p` of the relation.
        expected: usize,
    },
    /// A group id referenced a key that was never interned.
    UnknownGroup(u32),
    /// A failure mode shared across the workspace (e.g. an unparseable
    /// schema specification).
    Common(CommonError),
}

impl TemporalError {
    /// The shared failure vocabulary, if this error carries one.
    pub fn common(&self) -> Option<&CommonError> {
        match self {
            Self::Common(c) => Some(c),
            _ => None,
        }
    }
}

impl From<CommonError> for TemporalError {
    fn from(e: CommonError) -> Self {
        Self::Common(e)
    }
}

impl fmt::Display for TemporalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvertedInterval { start, end } => {
                write!(f, "inverted interval: start {start} exceeds end {end}")
            }
            Self::IntervalOutOfRange { start, end } => {
                write!(f, "interval [{start}, {end}] exceeds the representable time domain")
            }
            Self::NonFiniteValue { context } => {
                write!(f, "non-finite floating-point value at {context}")
            }
            Self::DuplicateAttribute(name) => {
                write!(f, "duplicate attribute name {name:?} in schema")
            }
            Self::UnknownAttribute(name) => write!(f, "unknown attribute {name:?}"),
            Self::ArityMismatch { got, expected } => {
                write!(f, "tuple has {got} values but schema has {expected} attributes")
            }
            Self::TypeMismatch { attribute, expected, got } => {
                write!(f, "attribute {attribute:?} expects {expected} but got {got}")
            }
            Self::NonSequential { index, reason } => {
                write!(f, "row {index} violates sequentiality: {reason}")
            }
            Self::DimensionMismatch { got, expected } => {
                write!(f, "row carries {got} aggregate values, relation has p = {expected}")
            }
            Self::UnknownGroup(gid) => write!(f, "unknown group id {gid}"),
            Self::Common(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TemporalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Common(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TemporalError::InvertedInterval { start: 5, end: 2 };
        assert!(e.to_string().contains("start 5"));
        let e = TemporalError::ArityMismatch { got: 2, expected: 3 };
        assert!(e.to_string().contains("2 values"));
        let e = TemporalError::NonSequential { index: 7, reason: "overlap".into() };
        assert!(e.to_string().contains("row 7"));
    }
}
