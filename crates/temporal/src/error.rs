//! Error type for the temporal data model.

use std::fmt;

use crate::chronon::Chronon;

/// Errors raised while constructing or validating temporal data.
#[derive(Debug, Clone, PartialEq)]
pub enum TemporalError {
    /// An interval was constructed with `start > end`.
    InvertedInterval {
        /// Requested start chronon.
        start: Chronon,
        /// Requested end chronon.
        end: Chronon,
    },
    /// An interval end point exceeds the representable maximum.
    IntervalOutOfRange {
        /// Requested start chronon.
        start: Chronon,
        /// Requested end chronon.
        end: Chronon,
    },
    /// A floating-point attribute or aggregate value was not finite.
    NonFiniteValue {
        /// Human-readable location of the offending value.
        context: String,
    },
    /// Two attributes in one schema share a name.
    DuplicateAttribute(String),
    /// An attribute name was not found in the schema.
    UnknownAttribute(String),
    /// A tuple's value count does not match the schema's attribute count.
    ArityMismatch {
        /// Number of values supplied.
        got: usize,
        /// Number of attributes the schema expects.
        expected: usize,
    },
    /// A value's type does not match the attribute's declared type.
    TypeMismatch {
        /// Attribute whose domain was violated.
        attribute: String,
        /// Declared type name.
        expected: &'static str,
        /// Supplied type name.
        got: &'static str,
    },
    /// Rows pushed into a [`crate::SequentialBuilder`] violate the
    /// sequential-relation invariant (sorted by group, chronological and
    /// non-overlapping within each group).
    NonSequential {
        /// Index of the offending row.
        index: usize,
        /// Explanation of the violated ordering rule.
        reason: String,
    },
    /// A row carries a different number of aggregate values than the
    /// relation's dimensionality `p`.
    DimensionMismatch {
        /// Number of values supplied.
        got: usize,
        /// Dimensionality `p` of the relation.
        expected: usize,
    },
    /// A group id referenced a key that was never interned.
    UnknownGroup(u32),
}

impl fmt::Display for TemporalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvertedInterval { start, end } => {
                write!(f, "inverted interval: start {start} exceeds end {end}")
            }
            Self::IntervalOutOfRange { start, end } => {
                write!(f, "interval [{start}, {end}] exceeds the representable time domain")
            }
            Self::NonFiniteValue { context } => {
                write!(f, "non-finite floating-point value at {context}")
            }
            Self::DuplicateAttribute(name) => {
                write!(f, "duplicate attribute name {name:?} in schema")
            }
            Self::UnknownAttribute(name) => write!(f, "unknown attribute {name:?}"),
            Self::ArityMismatch { got, expected } => {
                write!(f, "tuple has {got} values but schema has {expected} attributes")
            }
            Self::TypeMismatch { attribute, expected, got } => {
                write!(f, "attribute {attribute:?} expects {expected} but got {got}")
            }
            Self::NonSequential { index, reason } => {
                write!(f, "row {index} violates sequentiality: {reason}")
            }
            Self::DimensionMismatch { got, expected } => {
                write!(f, "row carries {got} aggregate values, relation has p = {expected}")
            }
            Self::UnknownGroup(gid) => write!(f, "unknown group id {gid}"),
        }
    }
}

impl std::error::Error for TemporalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TemporalError::InvertedInterval { start: 5, end: 2 };
        assert!(e.to_string().contains("start 5"));
        let e = TemporalError::ArityMismatch { got: 2, expected: 3 };
        assert!(e.to_string().contains("2 values"));
        let e = TemporalError::NonSequential { index: 7, reason: "overlap".into() };
        assert!(e.to_string().contains("row 7"));
    }
}
