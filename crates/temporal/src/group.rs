//! Aggregation-group keys.

use std::collections::HashMap;
use std::fmt;

use crate::value::Value;

/// Dense identifier of an interned [`GroupKey`].
pub type GroupId = u32;

/// The grouping-attribute values `g = r.A` that identify one aggregation
/// group, e.g. `(Proj = "A")` in the paper's running example.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct GroupKey(Box<[Value]>);

impl GroupKey {
    /// Creates a key from grouping-attribute values.
    pub fn new(values: Vec<Value>) -> Self {
        Self(values.into_boxed_slice())
    }

    /// The empty key used when a query has no grouping attributes — all
    /// tuples then belong to a single group.
    pub fn empty() -> Self {
        Self(Box::new([]))
    }

    /// The key's values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }
}

impl fmt::Display for GroupKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "()");
        }
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Interner assigning dense [`GroupId`]s to group keys.
///
/// ITA result relations are sorted by group; interning lets the downstream
/// algorithms compare groups with a single integer comparison.
#[derive(Debug, Default)]
pub struct GroupInterner {
    keys: Vec<GroupKey>,
    ids: HashMap<GroupKey, GroupId>,
}

impl GroupInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `key`, interning it on first sight.
    pub fn intern(&mut self, key: GroupKey) -> GroupId {
        if let Some(&id) = self.ids.get(&key) {
            return id;
        }
        let id = self.keys.len() as GroupId;
        self.keys.push(key.clone());
        self.ids.insert(key, id);
        id
    }

    /// The key for `id`, if interned.
    pub fn key(&self, id: GroupId) -> Option<&GroupKey> {
        self.keys.get(id as usize)
    }

    /// Number of interned keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether no keys have been interned.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Consumes the interner, returning keys indexed by id.
    pub fn into_keys(self) -> Vec<GroupKey> {
        self.keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut interner = GroupInterner::new();
        let a = interner.intern(GroupKey::new(vec![Value::str("A")]));
        let b = interner.intern(GroupKey::new(vec![Value::str("B")]));
        let a2 = interner.intern(GroupKey::new(vec![Value::str("A")]));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.key(b).unwrap().values(), &[Value::str("B")]);
    }

    #[test]
    fn empty_key_displays_as_unit() {
        assert_eq!(GroupKey::empty().to_string(), "()");
        assert_eq!(GroupKey::new(vec![Value::str("A"), Value::Int(3)]).to_string(), "(A, 3)");
    }
}
