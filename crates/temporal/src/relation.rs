//! Temporal relations: bags of tuples with validity intervals.

use std::fmt;

use crate::chronon::Chronon;
use crate::error::TemporalError;
use crate::interval::TimeInterval;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// A temporal relation `r` over a schema `R = (A1, ..., Am, T)`.
///
/// Tuples may overlap arbitrarily in time — this is the *argument* type of
/// the aggregation operators, e.g. the `proj` relation of Fig. 1(a).
#[derive(Debug, Clone, PartialEq)]
pub struct TemporalRelation {
    schema: Schema,
    tuples: Vec<Tuple>,
}

impl TemporalRelation {
    /// Creates an empty relation over `schema`.
    pub fn new(schema: Schema) -> Self {
        Self { schema, tuples: Vec::new() }
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Appends a tuple after validating arity and attribute types.
    pub fn push(
        &mut self,
        values: Vec<Value>,
        interval: TimeInterval,
    ) -> Result<(), TemporalError> {
        if values.len() != self.schema.arity() {
            return Err(TemporalError::ArityMismatch {
                got: values.len(),
                expected: self.schema.arity(),
            });
        }
        for (i, v) in values.iter().enumerate() {
            let attr = self.schema.attribute(i);
            if v.data_type() != attr.data_type() {
                return Err(TemporalError::TypeMismatch {
                    attribute: attr.name().to_string(),
                    expected: attr.data_type().name(),
                    got: v.data_type().name(),
                });
            }
            if let Value::Float(x) = v {
                if !x.is_finite() {
                    return Err(TemporalError::NonFiniteValue {
                        context: format!("attribute {:?}", attr.name()),
                    });
                }
            }
        }
        self.tuples.push(Tuple::new(values, interval));
        Ok(())
    }

    /// Builds a relation from rows, failing on the first invalid row.
    pub fn from_rows(
        schema: Schema,
        rows: impl IntoIterator<Item = (Vec<Value>, TimeInterval)>,
    ) -> Result<Self, TemporalError> {
        let mut rel = Self::new(schema);
        for (values, interval) in rows {
            rel.push(values, interval)?;
        }
        Ok(rel)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuples in insertion order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Iterates over the tuples.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.tuples.iter()
    }

    /// The convex hull of all tuple timestamps, `None` when empty.
    pub fn time_extent(&self) -> Option<TimeInterval> {
        let mut it = self.tuples.iter();
        let first = it.next()?.interval();
        let (mut lo, mut hi) = (first.start(), first.end());
        for t in it {
            lo = lo.min(t.interval().start());
            hi = hi.max(t.interval().end());
        }
        // `lo <= hi` because both come from the same valid interval set, so
        // `ok()` never actually discards an error here.
        TimeInterval::new(lo, hi).ok()
    }

    /// Sorts tuples by interval start (then end), the order ITA sweeps in.
    pub fn sort_by_time(&mut self) {
        self.tuples.sort_by_key(|t| (t.interval().start(), t.interval().end()));
    }

    /// All distinct chronons at which some tuple starts or ends, sorted.
    /// These are the only instants where an ITA aggregate can change.
    pub fn change_points(&self) -> Vec<Chronon> {
        let mut pts: Vec<Chronon> = Vec::with_capacity(self.tuples.len() * 2);
        for t in &self.tuples {
            pts.push(t.interval().start());
            pts.push(t.interval().end() + 1);
        }
        pts.sort_unstable();
        pts.dedup();
        pts
    }
}

impl fmt::Display for TemporalRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} [{} tuples]", self.schema, self.tuples.len())?;
        for t in &self.tuples {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a TemporalRelation {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;

    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::of(&[("Empl", DataType::Str), ("Sal", DataType::Int)]).unwrap()
    }

    fn iv(a: Chronon, b: Chronon) -> TimeInterval {
        TimeInterval::new(a, b).unwrap()
    }

    #[test]
    fn push_validates_arity() {
        let mut r = TemporalRelation::new(schema());
        let err = r.push(vec![Value::str("John")], iv(1, 4)).unwrap_err();
        assert!(matches!(err, TemporalError::ArityMismatch { got: 1, expected: 2 }));
    }

    #[test]
    fn push_validates_types() {
        let mut r = TemporalRelation::new(schema());
        let err = r.push(vec![Value::Int(1), Value::Int(800)], iv(1, 4)).unwrap_err();
        assert!(matches!(err, TemporalError::TypeMismatch { .. }));
    }

    #[test]
    fn extent_and_change_points() {
        let mut r = TemporalRelation::new(schema());
        r.push(vec![Value::str("John"), Value::Int(800)], iv(1, 4)).unwrap();
        r.push(vec![Value::str("Ann"), Value::Int(400)], iv(3, 6)).unwrap();
        assert_eq!(r.time_extent(), Some(iv(1, 6)));
        assert_eq!(r.change_points(), vec![1, 3, 5, 7]);
    }

    #[test]
    fn empty_relation_has_no_extent() {
        let r = TemporalRelation::new(schema());
        assert!(r.time_extent().is_none());
        assert!(r.is_empty());
    }

    #[test]
    fn sort_by_time_orders_tuples() {
        let mut r = TemporalRelation::new(schema());
        r.push(vec![Value::str("B"), Value::Int(2)], iv(5, 6)).unwrap();
        r.push(vec![Value::str("A"), Value::Int(1)], iv(1, 9)).unwrap();
        r.sort_by_time();
        assert_eq!(r.tuples()[0].interval(), iv(1, 9));
    }
}
