//! Temporal data model substrate for parsimonious temporal aggregation.
//!
//! This crate provides the relational building blocks the PTA paper
//! (Gordevičius, Gamper, Böhlen) assumes as given:
//!
//! * a discrete time domain of [`Chronon`]s and inclusive [`TimeInterval`]s,
//! * typed attribute [`Value`]s, [`Schema`]s and [`Tuple`]s,
//! * [`TemporalRelation`]: a bag of tuples with validity intervals,
//! * the [`fn@coalesce`] operator that merges value-equivalent tuples over
//!   consecutive time points (Böhlen, Snodgrass, Soo),
//! * [`SequentialRelation`]: the compact columnar form of an ITA result in
//!   which, per aggregation group, timestamps never overlap (§3 of the
//!   paper). This is the input type of every PTA algorithm.
//!
//! The crate is dependency-free and `forbid(unsafe_code)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chronon;
pub mod coalesce;
pub mod csv;
pub mod error;
pub mod group;
pub mod interval;
pub mod relation;
pub mod schema;
pub mod sequential;
pub mod tuple;
pub mod value;

pub use chronon::Chronon;
pub use coalesce::coalesce;
pub use csv::{IngestReport, RowPolicy};
pub use error::{CommonError, TemporalError};
pub use group::{GroupId, GroupKey};
pub use interval::TimeInterval;
pub use relation::TemporalRelation;
pub use schema::{Attribute, Schema};
pub use sequential::{SeqEntry, SequentialBuilder, SequentialRelation};
pub use tuple::Tuple;
pub use value::{DataType, Value};

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, TemporalError>;
