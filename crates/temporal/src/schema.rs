//! Relation schemas.

use std::fmt;

use crate::error::TemporalError;
use crate::value::DataType;

/// A named, typed attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    name: String,
    dtype: DataType,
}

impl Attribute {
    /// Creates an attribute.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Self { name: name.into(), dtype }
    }

    /// The attribute's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute's domain.
    pub fn data_type(&self) -> DataType {
        self.dtype
    }
}

/// The explicit (non-temporal) part of a temporal relation schema
/// `R = (A1, ..., Am, T)`.
///
/// The timestamp attribute `T` is implicit: every tuple of a
/// [`crate::TemporalRelation`] carries a [`crate::TimeInterval`] besides its
/// attribute values, so the schema lists only `A1..Am`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Builds a schema, rejecting duplicate attribute names.
    pub fn new(attrs: Vec<Attribute>) -> Result<Self, TemporalError> {
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].iter().any(|b| b.name == a.name) {
                return Err(TemporalError::DuplicateAttribute(a.name.clone()));
            }
        }
        Ok(Self { attrs })
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn of(pairs: &[(&str, DataType)]) -> Result<Self, TemporalError> {
        Self::new(pairs.iter().map(|(n, t)| Attribute::new(*n, *t)).collect())
    }

    /// Number of non-temporal attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// The attributes in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Index of the attribute called `name`.
    pub fn index_of(&self, name: &str) -> Result<usize, TemporalError> {
        self.attrs
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| TemporalError::UnknownAttribute(name.to_string()))
    }

    /// Resolves a list of attribute names to their indices.
    pub fn indices_of(&self, names: &[&str]) -> Result<Vec<usize>, TemporalError> {
        names.iter().map(|n| self.index_of(n)).collect()
    }

    /// The attribute at `index`.
    pub fn attribute(&self, index: usize) -> &Attribute {
        &self.attrs[index]
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", a.name, a.dtype.name())?;
        }
        write!(f, ", T)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_names_are_rejected() {
        let r = Schema::of(&[("a", DataType::Int), ("a", DataType::Str)]);
        assert!(matches!(r, Err(TemporalError::DuplicateAttribute(_))));
    }

    #[test]
    fn lookup_by_name() {
        let s = Schema::of(&[("Empl", DataType::Str), ("Sal", DataType::Int)]).unwrap();
        assert_eq!(s.index_of("Sal").unwrap(), 1);
        assert!(s.index_of("Nope").is_err());
        assert_eq!(s.indices_of(&["Sal", "Empl"]).unwrap(), vec![1, 0]);
    }

    #[test]
    fn display_includes_time_attribute() {
        let s = Schema::of(&[("Proj", DataType::Str)]).unwrap();
        assert_eq!(s.to_string(), "(Proj: Str, T)");
    }
}
