//! Inclusive time intervals over the discrete time domain.

use std::fmt;

use crate::chronon::{Chronon, MAX_CHRONON};
use crate::error::TemporalError;

/// A timestamp: a convex set of chronons `[start, end]`, both inclusive.
///
/// This matches the paper's representation `t = [tb, te]`. Intervals always
/// contain at least one chronon (`start <= end`); the degenerate instant
/// `[t, t]` is the timestamp of an un-coalesced ITA result tuple.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimeInterval {
    start: Chronon,
    end: Chronon,
}

impl TimeInterval {
    /// Creates the interval `[start, end]`.
    ///
    /// Fails with [`TemporalError::InvertedInterval`] when `start > end` and
    /// with [`TemporalError::IntervalOutOfRange`] when `end` exceeds
    /// [`MAX_CHRONON`] (reserved so `end + 1` cannot overflow).
    pub fn new(start: Chronon, end: Chronon) -> Result<Self, TemporalError> {
        if start > end {
            return Err(TemporalError::InvertedInterval { start, end });
        }
        if end > MAX_CHRONON {
            return Err(TemporalError::IntervalOutOfRange { start, end });
        }
        Ok(Self { start, end })
    }

    /// Creates the degenerate instant interval `[t, t]`.
    pub fn instant(t: Chronon) -> Result<Self, TemporalError> {
        Self::new(t, t)
    }

    /// Inclusive starting chronon (`tb`).
    #[inline]
    pub fn start(&self) -> Chronon {
        self.start
    }

    /// Inclusive ending chronon (`te`).
    #[inline]
    pub fn end(&self) -> Chronon {
        self.end
    }

    /// Number of chronons in the interval, `|T| = te - tb + 1`.
    ///
    /// This is the weight used by the merge operator (Def. 3) and the SSE
    /// error measure (Def. 5).
    #[inline]
    pub fn len(&self) -> u64 {
        // start <= end is an invariant, so the difference is non-negative.
        (self.end - self.start) as u64 + 1
    }

    /// Intervals are never empty; provided for API symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Does the interval contain chronon `t`?
    #[inline]
    pub fn contains_point(&self, t: Chronon) -> bool {
        self.start <= t && t <= self.end
    }

    /// Does `self` fully contain `other`?
    #[inline]
    pub fn contains(&self, other: &TimeInterval) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Do the two intervals share at least one chronon (`t ∩ t' ≠ ∅`)?
    #[inline]
    pub fn overlaps(&self, other: &TimeInterval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Allen's *meets*: `self` ends exactly one chronon before `other`
    /// starts. This is condition (2) of tuple adjacency (Def. 2).
    #[inline]
    pub fn meets(&self, other: &TimeInterval) -> bool {
        self.end + 1 == other.start
    }

    /// The intersection of the two intervals, if any.
    pub fn intersect(&self, other: &TimeInterval) -> Option<TimeInterval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start <= end).then_some(TimeInterval { start, end })
    }

    /// The convex hull `[min(tb), max(te)]` of the two intervals.
    ///
    /// For adjacent tuples this is the concatenated timestamp produced by
    /// the merge operator `⊕`.
    pub fn span(&self, other: &TimeInterval) -> TimeInterval {
        TimeInterval { start: self.start.min(other.start), end: self.end.max(other.end) }
    }

    /// Iterates over every chronon in the interval.
    pub fn chronons(&self) -> impl Iterator<Item = Chronon> {
        self.start..=self.end
    }
}

impl fmt::Debug for TimeInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

impl fmt::Display for TimeInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: Chronon, b: Chronon) -> TimeInterval {
        TimeInterval::new(a, b).unwrap()
    }

    #[test]
    fn construction_validates_order() {
        assert!(TimeInterval::new(3, 2).is_err());
        assert!(TimeInterval::new(2, 2).is_ok());
        assert!(TimeInterval::new(i64::MIN, i64::MAX).is_err());
        assert!(TimeInterval::new(i64::MIN, MAX_CHRONON).is_ok());
    }

    #[test]
    fn len_counts_inclusive_chronons() {
        assert_eq!(iv(1, 4).len(), 4);
        assert_eq!(iv(7, 7).len(), 1);
        assert_eq!(iv(-2, 2).len(), 5);
    }

    #[test]
    fn overlap_is_symmetric_and_inclusive() {
        assert!(iv(1, 4).overlaps(&iv(4, 6)));
        assert!(iv(4, 6).overlaps(&iv(1, 4)));
        assert!(!iv(1, 4).overlaps(&iv(5, 6)));
        assert!(iv(1, 10).overlaps(&iv(3, 4)));
    }

    #[test]
    fn meets_requires_exact_succession() {
        assert!(iv(1, 4).meets(&iv(5, 8)));
        assert!(!iv(1, 4).meets(&iv(6, 8)));
        assert!(!iv(1, 4).meets(&iv(4, 8)));
        assert!(!iv(5, 8).meets(&iv(1, 4)));
    }

    #[test]
    fn intersection_and_span() {
        assert_eq!(iv(1, 5).intersect(&iv(3, 9)), Some(iv(3, 5)));
        assert_eq!(iv(1, 2).intersect(&iv(4, 5)), None);
        assert_eq!(iv(1, 2).span(&iv(5, 9)), iv(1, 9));
    }

    #[test]
    fn point_queries() {
        let t = iv(2, 4);
        assert!(t.contains_point(2) && t.contains_point(4));
        assert!(!t.contains_point(1) && !t.contains_point(5));
        assert!(iv(1, 9).contains(&iv(2, 4)));
        assert!(!iv(2, 4).contains(&iv(2, 5)));
    }

    #[test]
    fn chronon_iteration() {
        let ts: Vec<_> = iv(3, 6).chronons().collect();
        assert_eq!(ts, vec![3, 4, 5, 6]);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(iv(1, 4).to_string(), "[1, 4]");
    }
}
