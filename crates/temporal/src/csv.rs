//! Plain-text (CSV) import/export of temporal relations.
//!
//! The on-disk format mirrors the paper's tables: one row per tuple, the
//! non-temporal attributes first, then the inclusive interval bounds
//! `t_start`, `t_end`. A schema string such as `"Empl:str,Proj:str,
//! Sal:int"` declares the attribute names and domains, so files round-trip
//! without external dependencies.

use std::io::{BufRead, Write};

use pta_failpoints::fail_point;
use pta_pool::Pool;

use crate::error::{CommonError, TemporalError};
use crate::relation::TemporalRelation;
use crate::schema::{Attribute, Schema};
use crate::sequential::SequentialRelation;
use crate::tuple::Tuple;
use crate::value::{DataType, Value};
use crate::TimeInterval;

/// How the CSV readers treat malformed data rows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum RowPolicy {
    /// Abort the read on the first malformed row (the default).
    #[default]
    Strict,
    /// Skip malformed rows, keep the well-formed ones, and report the
    /// skips in an [`IngestReport`]. I/O errors still abort.
    SkipAndReport,
}

/// What a [`RowPolicy::SkipAndReport`] read skipped. The sequential and
/// the chunked readers produce identical reports for the same input.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Data rows that parsed and made it into the relation.
    pub rows_kept: usize,
    /// Malformed data rows that were skipped.
    pub rows_skipped: usize,
    /// Zero-based file line numbers of every skipped row, in file order.
    pub skipped_lines: Vec<usize>,
    /// Rendered errors of the first [`IngestReport::MAX_ERRORS`] skipped
    /// rows, in file order — a diagnosis sample; the line list above is
    /// always complete.
    pub first_errors: Vec<String>,
}

impl IngestReport {
    /// Cap on retained error messages (`first_errors`).
    pub const MAX_ERRORS: usize = 16;

    /// Whether any row was skipped.
    pub fn has_skips(&self) -> bool {
        self.rows_skipped > 0
    }

    fn record(&mut self, line: usize, err: &TemporalError) {
        self.rows_skipped += 1;
        self.skipped_lines.push(line);
        if self.first_errors.len() < Self::MAX_ERRORS {
            self.first_errors.push(format!("line {line}: {err}"));
        }
    }

    /// Folds a chunk's report into this one. Chunks drain in file order,
    /// so the first [`IngestReport::MAX_ERRORS`] messages overall are
    /// exactly the sequential reader's: a chunk's capped message list
    /// covers its earliest skips, and once this report's cap is reached
    /// no later chunk's messages are needed.
    fn absorb(&mut self, chunk: IngestReport) {
        self.rows_kept += chunk.rows_kept;
        self.rows_skipped += chunk.rows_skipped;
        let room = Self::MAX_ERRORS.saturating_sub(self.first_errors.len());
        self.first_errors.extend(chunk.first_errors.into_iter().take(room));
        self.skipped_lines.extend(chunk.skipped_lines);
    }
}

/// Parses a schema string: comma-separated `name:type` pairs with types
/// `int`, `float`, `str`, `bool`.
pub fn parse_schema(spec: &str) -> Result<Schema, TemporalError> {
    let mut attrs = Vec::new();
    for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let (name, ty) = part.split_once(':').ok_or_else(|| {
            TemporalError::from(CommonError::invalid_parameter(
                "schema",
                format!("schema entry {part:?} is not name:type"),
            ))
        })?;
        let dtype = match ty.trim().to_ascii_lowercase().as_str() {
            "int" | "i64" => DataType::Int,
            "float" | "f64" => DataType::Float,
            "str" | "string" => DataType::Str,
            "bool" => DataType::Bool,
            other => {
                return Err(CommonError::invalid_parameter(
                    "schema",
                    format!("unknown type {other:?} (use int|float|str|bool)"),
                )
                .into())
            }
        };
        attrs.push(Attribute::new(name.trim(), dtype));
    }
    Schema::new(attrs)
}

fn parse_value(raw: &str, dtype: DataType, line: usize) -> Result<Value, TemporalError> {
    let raw = raw.trim();
    let err = |what: &str| TemporalError::NonSequential {
        index: line,
        reason: format!("cannot parse {raw:?} as {what}"),
    };
    match dtype {
        DataType::Int => raw.parse::<i64>().map(Value::Int).map_err(|_| err("int")),
        DataType::Float => raw.parse::<f64>().map_err(|_| err("float")).and_then(Value::float),
        DataType::Str => Ok(Value::str(raw)),
        DataType::Bool => match raw {
            "true" | "1" => Ok(Value::Bool(true)),
            "false" | "0" => Ok(Value::Bool(false)),
            _ => Err(err("bool")),
        },
    }
}

/// Parses one non-skipped data row (already trimmed) into its attribute
/// values and interval. Shared by the sequential and the chunked readers
/// so both report byte-for-byte identical errors for the same row.
fn parse_row(
    schema: &Schema,
    trimmed: &str,
    row_index: usize,
) -> Result<(Vec<Value>, TimeInterval), TemporalError> {
    let arity = schema.arity();
    // Check the column count before parsing any field, so a row with
    // the wrong shape reports ArityMismatch rather than a misleading
    // parse error on whichever value landed in the wrong column. The
    // extra `count()` pass allocates nothing.
    let got = trimmed.split(',').count();
    if got != arity + 2 {
        return Err(TemporalError::ArityMismatch { got, expected: arity + 2 });
    }
    let mut fields = trimmed.split(',');
    let mut next_field =
        || fields.next().ok_or(TemporalError::ArityMismatch { got, expected: arity + 2 });
    let mut values = Vec::with_capacity(arity);
    for i in 0..arity {
        let raw = next_field()?;
        values.push(parse_value(raw, schema.attribute(i).data_type(), row_index)?);
    }
    let parse_t = |raw: &str| -> Result<i64, TemporalError> {
        raw.trim().parse::<i64>().map_err(|_| TemporalError::NonSequential {
            index: row_index,
            reason: format!("cannot parse chronon {raw:?}"),
        })
    };
    let start = parse_t(next_field()?)?;
    let end = parse_t(next_field()?)?;
    Ok((values, TimeInterval::new(start, end)?))
}

/// Reads a temporal relation from CSV. The first line must be a header;
/// every following line carries the attribute values in schema order plus
/// `t_start` and `t_end`. Empty lines and `#` comments are skipped.
///
/// The reader is allocation-light on the hot path: one line buffer is
/// reused across rows (`read_line` instead of the per-line `String`s of
/// `lines()`), and fields are consumed straight off the split iterator
/// without collecting them — only the parsed `Value`s themselves
/// allocate. `crates/bench/benches/csv_ingest.rs` pins the throughput.
pub fn read_relation(
    schema: Schema,
    mut reader: impl BufRead,
) -> Result<TemporalRelation, TemporalError> {
    let mut rel = TemporalRelation::new(schema);
    let schema = rel.schema().clone();
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        let read = reader.read_line(&mut line).map_err(|e| TemporalError::NonSequential {
            index: lineno,
            reason: format!("I/O error: {e}"),
        })?;
        if read == 0 {
            break;
        }
        let row_index = lineno;
        lineno += 1;
        if row_index == 0 {
            // Header.
            continue;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (values, interval) = parse_row(&schema, trimmed, row_index)?;
        rel.push(values, interval)?;
    }
    Ok(rel)
}

/// [`read_relation`] under a [`RowPolicy`]. Under
/// [`RowPolicy::SkipAndReport`], malformed data rows are skipped instead
/// of aborting the read, and the returned [`IngestReport`] lists them.
pub fn read_relation_with_policy(
    schema: Schema,
    reader: impl BufRead,
    policy: RowPolicy,
) -> Result<(TemporalRelation, IngestReport), TemporalError> {
    match policy {
        RowPolicy::Strict => read_relation(schema, reader).map(|rel| {
            let report = IngestReport { rows_kept: rel.len(), ..IngestReport::default() };
            (rel, report)
        }),
        RowPolicy::SkipAndReport => read_relation_lenient(schema, reader),
    }
}

fn read_relation_lenient(
    schema: Schema,
    mut reader: impl BufRead,
) -> Result<(TemporalRelation, IngestReport), TemporalError> {
    let mut rel = TemporalRelation::new(schema);
    let schema = rel.schema().clone();
    let mut report = IngestReport::default();
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        let read = reader.read_line(&mut line).map_err(|e| TemporalError::NonSequential {
            index: lineno,
            reason: format!("I/O error: {e}"),
        })?;
        if read == 0 {
            break;
        }
        let row_index = lineno;
        lineno += 1;
        if row_index == 0 {
            // Header.
            continue;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        match parse_row(&schema, trimmed, row_index).and_then(|(v, iv)| rel.push(v, iv)) {
            Ok(()) => report.rows_kept += 1,
            Err(e) => report.record(row_index, &e),
        }
    }
    Ok((rel, report))
}

/// Inputs below this size parse sequentially even under a multi-thread
/// budget: chunk setup costs more than the parse itself.
const PAR_MIN_BYTES: usize = 1 << 16;

/// Chunks handed out per worker. More than one so the pool's dynamic
/// scheduling can rebalance chunks whose rows parse unevenly (comment
/// blocks, string-heavy rows).
const PAR_CHUNKS_PER_WORKER: usize = 4;

/// [`read_relation`] with the parse fanned out across a thread pool:
/// the whole input is read up front, split into newline-aligned chunks,
/// parsed chunk-wise on the default pool (`PTA_THREADS`), and the rows
/// spliced back in file order. The result is row-identical to the
/// sequential reader — including *which* error a malformed file reports:
/// chunk results are drained in file order and each chunk stops at its
/// first bad row, so the first bad row in the file wins, exactly as if
/// the file had been parsed front to back.
pub fn read_relation_parallel(
    schema: Schema,
    mut reader: impl BufRead,
) -> Result<TemporalRelation, TemporalError> {
    let mut text = String::new();
    reader.read_to_string(&mut text).map_err(|e| TemporalError::NonSequential {
        index: 0,
        reason: format!("I/O error: {e}"),
    })?;
    read_relation_str(schema, &text, 0)
}

/// [`read_relation_parallel`] over an in-memory string with an explicit
/// thread budget (`0` = the process default). Single-thread budgets and
/// small inputs take the sequential path unchanged.
pub fn read_relation_str(
    schema: Schema,
    text: &str,
    threads: usize,
) -> Result<TemporalRelation, TemporalError> {
    let pool = Pool::new(threads);
    if pool.threads() <= 1 || text.len() < PAR_MIN_BYTES {
        return read_relation(schema, text.as_bytes());
    }
    let chunks = pool.threads() * PAR_CHUNKS_PER_WORKER;
    read_str_chunked(schema, text, &pool, chunks)
}

/// [`read_relation_str`] under a [`RowPolicy`]. The surviving rows and
/// the [`IngestReport`] are identical to
/// [`read_relation_with_policy`]'s over the same input, whatever the
/// thread budget or chunk placement.
pub fn read_relation_str_with_policy(
    schema: Schema,
    text: &str,
    threads: usize,
    policy: RowPolicy,
) -> Result<(TemporalRelation, IngestReport), TemporalError> {
    let pool = Pool::new(threads);
    if policy == RowPolicy::Strict || pool.threads() <= 1 || text.len() < PAR_MIN_BYTES {
        // Strict parses chunked as before; lenient small inputs fall back
        // to the sequential lenient reader.
        return match policy {
            RowPolicy::Strict if pool.threads() > 1 && text.len() >= PAR_MIN_BYTES => {
                let chunks = pool.threads() * PAR_CHUNKS_PER_WORKER;
                read_str_chunked(schema, text, &pool, chunks).map(|rel| {
                    let report = IngestReport { rows_kept: rel.len(), ..IngestReport::default() };
                    (rel, report)
                })
            }
            _ => read_relation_with_policy(schema, text.as_bytes(), policy),
        };
    }
    let chunks = pool.threads() * PAR_CHUNKS_PER_WORKER;
    read_str_chunked_lenient(schema, text, &pool, chunks)
}

/// Newline-aligned chunk extents: `(start, end, first_line)` byte ranges
/// that tile `text` exactly, each ending just after a `'\n'` (or at the
/// end of input), with `first_line` the number of lines before the chunk.
/// Records are never split: a chunk boundary that would land mid-record
/// slides forward to the next newline. Searching bytes for `b'\n'` is
/// UTF-8-safe — the newline byte never occurs inside a multi-byte
/// sequence — so every extent is a valid `str` slice boundary.
fn chunk_bounds(text: &str, chunks: usize) -> Vec<(usize, usize, usize)> {
    let bytes = text.as_bytes();
    let n = bytes.len();
    let chunks = chunks.max(1);
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0usize;
    let mut first_line = 0usize;
    for c in 0..chunks {
        if start >= n {
            break;
        }
        // Ideal split point, then slide to the newline at or after it
        // (`target - 1` so a split landing exactly on a '\n' stays put).
        let target = (n * (c + 1) / chunks).max(start + 1);
        let end = if target >= n {
            n
        } else {
            match bytes[target - 1..].iter().position(|&b| b == b'\n') {
                Some(off) => target + off,
                None => n,
            }
        };
        out.push((start, end, first_line));
        first_line += bytes[start..end].iter().filter(|&&b| b == b'\n').count();
        start = end;
    }
    out
}

/// Parses one chunk into row parts. `first_line` keeps global line
/// numbers (and thus the header skip and error indices) identical to the
/// sequential reader's.
fn parse_chunk(
    schema: &Schema,
    chunk: &str,
    first_line: usize,
) -> Result<Vec<(Vec<Value>, TimeInterval)>, TemporalError> {
    fail_point!("csv.chunk", |msg: String| Err(TemporalError::NonSequential {
        index: first_line,
        reason: msg,
    }));
    let mut rows = Vec::new();
    for (i, line) in chunk.lines().enumerate() {
        let row_index = first_line + i;
        if row_index == 0 {
            // Header.
            continue;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        rows.push(parse_row(schema, trimmed, row_index)?);
    }
    Ok(rows)
}

/// The chunked parse against an explicit pool and chunk count — the
/// equivalence tests force tiny chunks through here to exercise every
/// boundary placement.
fn read_str_chunked(
    schema: Schema,
    text: &str,
    pool: &Pool,
    chunks: usize,
) -> Result<TemporalRelation, TemporalError> {
    let bounds = chunk_bounds(text, chunks);
    let schema_ref = &schema;
    let parsed = pool.map(bounds, |(start, end, first_line)| {
        parse_chunk(schema_ref, &text[start..end], first_line)
    });
    let mut rel = TemporalRelation::new(schema);
    for chunk in parsed {
        for (values, interval) in chunk? {
            rel.push(values, interval)?;
        }
    }
    Ok(rel)
}

/// The lenient chunk parse: malformed rows land in the chunk's report
/// instead of aborting it. Kept rows carry their file line so the drain
/// loop can attribute any (in practice unreachable) push failure.
fn parse_chunk_lenient(
    schema: &Schema,
    chunk: &str,
    first_line: usize,
) -> (Vec<(usize, Vec<Value>, TimeInterval)>, IngestReport) {
    fail_point!("csv.chunk");
    let mut rows = Vec::new();
    let mut report = IngestReport::default();
    for (i, line) in chunk.lines().enumerate() {
        let row_index = first_line + i;
        if row_index == 0 {
            // Header.
            continue;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        match parse_row(schema, trimmed, row_index) {
            Ok((values, interval)) => rows.push((row_index, values, interval)),
            Err(e) => report.record(row_index, &e),
        }
    }
    (rows, report)
}

/// The lenient chunked parse — row- and report-identical to
/// [`read_relation_lenient`]: chunks drain in file order, and
/// [`IngestReport::absorb`] preserves the first-N error sample.
fn read_str_chunked_lenient(
    schema: Schema,
    text: &str,
    pool: &Pool,
    chunks: usize,
) -> Result<(TemporalRelation, IngestReport), TemporalError> {
    let bounds = chunk_bounds(text, chunks);
    let schema_ref = &schema;
    let parsed = pool.map(bounds, |(start, end, first_line)| {
        parse_chunk_lenient(schema_ref, &text[start..end], first_line)
    });
    let mut rel = TemporalRelation::new(schema);
    let mut report = IngestReport::default();
    for (rows, chunk_report) in parsed {
        report.absorb(chunk_report);
        for (line, values, interval) in rows {
            match rel.push(values, interval) {
                Ok(()) => report.rows_kept += 1,
                Err(e) => report.record(line, &e),
            }
        }
    }
    Ok((rel, report))
}

fn escape(v: &Value) -> String {
    let s = v.to_string();
    debug_assert!(!s.contains(','), "CSV fields must not contain commas");
    s
}

/// Writes a temporal relation as CSV (header + one row per tuple).
pub fn write_relation(relation: &TemporalRelation, mut writer: impl Write) -> std::io::Result<()> {
    let names: Vec<&str> = relation.schema().attributes().iter().map(Attribute::name).collect();
    writeln!(writer, "{},t_start,t_end", names.join(","))?;
    for t in relation.iter() {
        let vals: Vec<String> = t.values().iter().map(escape).collect();
        writeln!(writer, "{},{},{}", vals.join(","), t.interval().start(), t.interval().end())?;
    }
    Ok(())
}

/// Writes a sequential relation (an ITA/PTA result) as CSV: the grouping
/// key rendered per `group_names`, the aggregate values per `value_names`,
/// then the interval bounds.
pub fn write_sequential(
    seq: &SequentialRelation,
    group_names: &[&str],
    value_names: &[&str],
    mut writer: impl Write,
) -> std::io::Result<()> {
    let mut header: Vec<String> = group_names.iter().map(|s| s.to_string()).collect();
    header.extend(value_names.iter().map(|s| s.to_string()));
    writeln!(writer, "{},t_start,t_end", header.join(","))?;
    for i in 0..seq.len() {
        let key = seq
            .group_key(seq.group(i))
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let mut fields: Vec<String> = key.values().iter().map(escape).collect();
        for d in 0..seq.dims() {
            fields.push(format!("{}", seq.value(i, d)));
        }
        writeln!(
            writer,
            "{},{},{}",
            fields.join(","),
            seq.interval(i).start(),
            seq.interval(i).end()
        )?;
    }
    Ok(())
}

/// Convenience re-export of [`Tuple`] construction from parsed parts.
pub fn tuple(values: Vec<Value>, interval: TimeInterval) -> Tuple {
    Tuple::new(values, interval)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn schema_parsing() {
        let s = parse_schema("Empl:str, Sal:int, Rate:float, Active:bool").unwrap();
        assert_eq!(s.arity(), 4);
        assert_eq!(s.attribute(1).data_type(), DataType::Int);
        assert!(parse_schema("X").is_err());
        assert!(parse_schema("X:widget").is_err());
        assert!(parse_schema("X:int,X:int").is_err());
    }

    #[test]
    fn relation_roundtrip() {
        let schema = parse_schema("Empl:str,Proj:str,Sal:int").unwrap();
        let mut rel = TemporalRelation::new(schema.clone());
        rel.push(
            vec![Value::str("John"), Value::str("A"), Value::Int(800)],
            TimeInterval::new(1, 4).unwrap(),
        )
        .unwrap();
        rel.push(
            vec![Value::str("Ann"), Value::str("A"), Value::Int(400)],
            TimeInterval::new(3, 6).unwrap(),
        )
        .unwrap();
        let mut buf = Vec::new();
        write_relation(&rel, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("Empl,Proj,Sal,t_start,t_end\n"));
        let back = read_relation(schema, BufReader::new(&buf[..])).unwrap();
        assert_eq!(back, rel);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let schema = parse_schema("V:int").unwrap();
        let text = "V,t_start,t_end\n# comment\n\n5,1,2\n";
        let rel = read_relation(schema, BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.tuples()[0].value(0), &Value::Int(5));
    }

    #[test]
    fn malformed_rows_are_rejected() {
        let schema = parse_schema("V:int").unwrap();
        for text in [
            "V,t_start,t_end\n5,1\n",   // missing field
            "V,t_start,t_end\nx,1,2\n", // bad int
            "V,t_start,t_end\n5,9,2\n", // inverted interval
            "V,t_start,t_end\n5,a,2\n", // bad chronon
        ] {
            assert!(
                read_relation(schema.clone(), BufReader::new(text.as_bytes())).is_err(),
                "{text:?} should fail"
            );
        }
    }

    #[test]
    fn wrong_column_counts_report_arity_not_parse_errors() {
        // A row with too many fields must say ArityMismatch even though
        // the misplaced field ("extra") would also fail to parse as a
        // chronon — the column count is the real problem.
        let schema = parse_schema("Empl:str,Proj:str,Sal:int").unwrap();
        for (text, got) in [
            ("Empl,Proj,Sal,t_start,t_end\ne1,p1,100,extra,0,5\n", 6),
            ("Empl,Proj,Sal,t_start,t_end\ne1,p1,100,0\n", 4),
        ] {
            let err = read_relation(schema.clone(), BufReader::new(text.as_bytes())).unwrap_err();
            assert!(
                matches!(err, TemporalError::ArityMismatch { got: g, expected: 5 } if g == got),
                "{text:?}: {err}"
            );
        }
    }

    /// A synthetic corpus with comments, blank lines, and multi-type rows.
    fn corpus(rows: usize, trailing_newline: bool) -> String {
        let mut text = String::from("Empl,Dept,Sal,t_start,t_end\n# generated corpus\n");
        for i in 0..rows {
            if i % 97 == 0 {
                text.push_str("\n# section break\n");
            }
            let start = (i * 3) as i64;
            text.push_str(&format!("e{},d{},{},{},{}\n", i % 17, i % 5, 100 + i, start, start + 2));
        }
        if !trailing_newline {
            text.pop();
        }
        text
    }

    #[test]
    fn chunk_bounds_tile_text_at_newlines() {
        for text in [corpus(57, true), corpus(57, false), String::new(), "no newline at all".into()]
        {
            for chunks in [1, 2, 3, 7, 64] {
                let bounds = chunk_bounds(&text, chunks);
                let mut next = 0usize;
                let mut lines = 0usize;
                for &(start, end, first_line) in &bounds {
                    assert_eq!(start, next, "chunks must be contiguous");
                    assert!(end > start, "chunks must be non-empty");
                    assert_eq!(first_line, lines, "line numbers must accumulate");
                    if end < text.len() {
                        assert_eq!(text.as_bytes()[end - 1], b'\n', "split mid-record");
                    }
                    lines += text[start..end].matches('\n').count();
                    next = end;
                }
                assert_eq!(next, text.len(), "chunks must cover the input");
            }
        }
    }

    /// The chunked parse is row-identical to the sequential reader across
    /// trailing-newline, blank-line, and comment placements, for chunk
    /// counts from one to far more than the worker count — including
    /// counts that force boundaries onto comments and blank lines.
    #[test]
    fn chunked_parse_matches_sequential() {
        let schema = parse_schema("Empl:str,Dept:str,Sal:int").unwrap();
        for trailing in [true, false] {
            let text = corpus(211, trailing);
            let seq = read_relation(schema.clone(), text.as_bytes()).unwrap();
            for (threads, chunks) in [(1, 1), (2, 2), (4, 3), (4, 7), (4, 64), (4, 1000)] {
                let par =
                    read_str_chunked(schema.clone(), &text, &Pool::new(threads), chunks).unwrap();
                assert_eq!(par, seq, "threads {threads}, chunks {chunks}, trailing {trailing}");
            }
        }
    }

    /// The public entry points agree with the sequential reader too (the
    /// corpus here is below `PAR_MIN_BYTES`, so this also pins the small-
    /// input fallback; the forced-chunk test above covers the fan-out).
    #[test]
    fn parallel_reader_matches_sequential() {
        let schema = parse_schema("Empl:str,Dept:str,Sal:int").unwrap();
        let text = corpus(150, true);
        let seq = read_relation(schema.clone(), text.as_bytes()).unwrap();
        assert_eq!(read_relation_parallel(schema.clone(), text.as_bytes()).unwrap(), seq);
        for threads in [0, 1, 2, 4] {
            assert_eq!(read_relation_str(schema.clone(), &text, threads).unwrap(), seq);
        }
    }

    /// Error reporting is in file order: the first bad row in the file
    /// wins even when a later chunk also contains a bad row, and the
    /// reported error is identical to the sequential reader's.
    #[test]
    fn chunked_errors_match_sequential_in_file_order() {
        let schema = parse_schema("Empl:str,Dept:str,Sal:int").unwrap();
        let mut text = corpus(120, true);
        let lines: Vec<&str> = text.lines().collect();
        let bad_early = lines.len() / 3;
        let bad_late = 2 * lines.len() / 3;
        let mut mutated: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
        mutated[bad_early] = "e1,d1,not-a-number,5,9".into();
        mutated[bad_late] = "e1,d1,7,5".into();
        text = mutated.join("\n");
        text.push('\n');
        let seq_err = read_relation(schema.clone(), text.as_bytes()).unwrap_err();
        for chunks in [2, 5, 64] {
            let par_err =
                read_str_chunked(schema.clone(), &text, &Pool::new(4), chunks).unwrap_err();
            assert_eq!(par_err.to_string(), seq_err.to_string(), "chunks {chunks}");
        }
        assert!(seq_err.to_string().contains("not-a-number"), "{seq_err}");
    }

    /// Lenient mode keeps exactly the well-formed rows and reports the
    /// malformed ones by line, with rendered messages for the first few.
    #[test]
    fn lenient_reader_skips_and_reports() {
        let schema = parse_schema("Empl:str,Dept:str,Sal:int").unwrap();
        let text = corpus(80, true);
        let lines: Vec<String> = text.lines().map(str::to_string).collect();
        let mut mutated = lines.clone();
        // Three different failure shapes on known lines.
        let bad = [10usize, 40, 71];
        mutated[bad[0]] = "e1,d1,not-a-number,5,9".into();
        mutated[bad[1]] = "e1,d1,7,5".into(); // missing column
        mutated[bad[2]] = "e1,d1,7,9,2".into(); // inverted interval
        let mutated_text = mutated.join("\n") + "\n";
        assert!(
            read_relation_with_policy(schema.clone(), mutated_text.as_bytes(), RowPolicy::Strict)
                .is_err(),
            "strict must fail on the bad rows"
        );
        let (rel, report) = read_relation_with_policy(
            schema.clone(),
            mutated_text.as_bytes(),
            RowPolicy::SkipAndReport,
        )
        .unwrap();
        assert_eq!(report.rows_skipped, 3);
        assert_eq!(report.skipped_lines, bad.to_vec());
        assert_eq!(report.first_errors.len(), 3);
        assert!(report.first_errors[0].starts_with("line 10:"), "{:?}", report.first_errors);
        assert!(report.has_skips());
        // The survivors are exactly the strict parse of the clean text.
        let clean: Vec<String> = lines
            .iter()
            .enumerate()
            .filter(|(i, _)| !bad.contains(i))
            .map(|(_, l)| l.clone())
            .collect();
        let clean_text = clean.join("\n") + "\n";
        let clean_rel = read_relation(schema, BufReader::new(clean_text.as_bytes())).unwrap();
        assert_eq!(rel, clean_rel);
        assert_eq!(report.rows_kept, rel.len());
    }

    /// The error-message sample caps at [`IngestReport::MAX_ERRORS`] while
    /// the skipped-line list stays complete.
    #[test]
    fn lenient_error_sample_is_capped() {
        let schema = parse_schema("V:int").unwrap();
        let mut text = String::from("V,t_start,t_end\n");
        for _ in 0..(IngestReport::MAX_ERRORS + 9) {
            text.push_str("oops,1,2\n");
        }
        let (rel, report) =
            read_relation_with_policy(schema, text.as_bytes(), RowPolicy::SkipAndReport).unwrap();
        assert!(rel.is_empty());
        assert_eq!(report.rows_skipped, IngestReport::MAX_ERRORS + 9);
        assert_eq!(report.skipped_lines.len(), IngestReport::MAX_ERRORS + 9);
        assert_eq!(report.first_errors.len(), IngestReport::MAX_ERRORS);
    }

    /// Sequential and chunked lenient reads are identical — surviving
    /// rows *and* report — with malformed rows forced onto chunk
    /// boundaries by sweeping the chunk count.
    #[test]
    fn lenient_parity_sequential_vs_chunked() {
        let schema = parse_schema("Empl:str,Dept:str,Sal:int").unwrap();
        for trailing in [true, false] {
            let text = corpus(211, trailing);
            let lines: Vec<String> = text.lines().map(str::to_string).collect();
            let mut mutated = lines.clone();
            // Malformed rows spread across the file, including first/last
            // data rows so some land exactly on chunk edges.
            let step = lines.len() / 9;
            for j in 1..9 {
                mutated[j * step] = format!("bad-row-{j}");
            }
            let mut mtext = mutated.join("\n");
            if trailing {
                mtext.push('\n');
            }
            let (seq_rel, seq_report) = read_relation_with_policy(
                schema.clone(),
                mtext.as_bytes(),
                RowPolicy::SkipAndReport,
            )
            .unwrap();
            assert!(seq_report.has_skips());
            for (threads, chunks) in [(2, 2), (4, 3), (4, 7), (4, 64), (4, 1000)] {
                let (par_rel, par_report) =
                    read_str_chunked_lenient(schema.clone(), &mtext, &Pool::new(threads), chunks)
                        .unwrap();
                assert_eq!(par_rel, seq_rel, "threads {threads}, chunks {chunks}");
                assert_eq!(par_report, seq_report, "threads {threads}, chunks {chunks}");
            }
            // The public entry point agrees too.
            let (pub_rel, pub_report) =
                read_relation_str_with_policy(schema.clone(), &mtext, 4, RowPolicy::SkipAndReport)
                    .unwrap();
            assert_eq!(pub_rel, seq_rel);
            assert_eq!(pub_report, seq_report);
        }
    }

    /// The strict policy through the policy-aware entry points behaves
    /// exactly like the plain readers.
    #[test]
    fn strict_policy_wrappers_match_plain_readers() {
        let schema = parse_schema("Empl:str,Dept:str,Sal:int").unwrap();
        let text = corpus(150, true);
        let plain = read_relation(schema.clone(), text.as_bytes()).unwrap();
        let (rel, report) =
            read_relation_with_policy(schema.clone(), text.as_bytes(), RowPolicy::Strict).unwrap();
        assert_eq!(rel, plain);
        assert_eq!(report.rows_kept, plain.len());
        assert!(!report.has_skips());
        let (rel2, _) =
            read_relation_str_with_policy(schema.clone(), &text, 4, RowPolicy::Strict).unwrap();
        assert_eq!(rel2, plain);
        // Strict still aborts on a bad row.
        let bad = "Empl,Dept,Sal,t_start,t_end\ne1,d1,x,1,2\n";
        assert!(read_relation_with_policy(schema, bad.as_bytes(), RowPolicy::Strict).is_err());
    }

    #[test]
    fn sequential_export_matches_layout() {
        use crate::{GroupKey, SequentialBuilder};
        let mut b = SequentialBuilder::new(1);
        b.push(GroupKey::new(vec![Value::str("A")]), TimeInterval::new(1, 3).unwrap(), &[733.5])
            .unwrap();
        let seq = b.build();
        let mut buf = Vec::new();
        write_sequential(&seq, &["Proj"], &["AvgSal"], &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "Proj,AvgSal,t_start,t_end\nA,733.5,1,3\n");
    }
}
