//! Plain-text (CSV) import/export of temporal relations.
//!
//! The on-disk format mirrors the paper's tables: one row per tuple, the
//! non-temporal attributes first, then the inclusive interval bounds
//! `t_start`, `t_end`. A schema string such as `"Empl:str,Proj:str,
//! Sal:int"` declares the attribute names and domains, so files round-trip
//! without external dependencies.

use std::io::{BufRead, Write};

use crate::error::{CommonError, TemporalError};
use crate::relation::TemporalRelation;
use crate::schema::{Attribute, Schema};
use crate::sequential::SequentialRelation;
use crate::tuple::Tuple;
use crate::value::{DataType, Value};
use crate::TimeInterval;

/// Parses a schema string: comma-separated `name:type` pairs with types
/// `int`, `float`, `str`, `bool`.
pub fn parse_schema(spec: &str) -> Result<Schema, TemporalError> {
    let mut attrs = Vec::new();
    for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let (name, ty) = part.split_once(':').ok_or_else(|| {
            TemporalError::from(CommonError::invalid_parameter(
                "schema",
                format!("schema entry {part:?} is not name:type"),
            ))
        })?;
        let dtype = match ty.trim().to_ascii_lowercase().as_str() {
            "int" | "i64" => DataType::Int,
            "float" | "f64" => DataType::Float,
            "str" | "string" => DataType::Str,
            "bool" => DataType::Bool,
            other => {
                return Err(CommonError::invalid_parameter(
                    "schema",
                    format!("unknown type {other:?} (use int|float|str|bool)"),
                )
                .into())
            }
        };
        attrs.push(Attribute::new(name.trim(), dtype));
    }
    Schema::new(attrs)
}

fn parse_value(raw: &str, dtype: DataType, line: usize) -> Result<Value, TemporalError> {
    let raw = raw.trim();
    let err = |what: &str| TemporalError::NonSequential {
        index: line,
        reason: format!("cannot parse {raw:?} as {what}"),
    };
    match dtype {
        DataType::Int => raw.parse::<i64>().map(Value::Int).map_err(|_| err("int")),
        DataType::Float => raw.parse::<f64>().map_err(|_| err("float")).and_then(Value::float),
        DataType::Str => Ok(Value::str(raw)),
        DataType::Bool => match raw {
            "true" | "1" => Ok(Value::Bool(true)),
            "false" | "0" => Ok(Value::Bool(false)),
            _ => Err(err("bool")),
        },
    }
}

/// Reads a temporal relation from CSV. The first line must be a header;
/// every following line carries the attribute values in schema order plus
/// `t_start` and `t_end`. Empty lines and `#` comments are skipped.
///
/// The reader is allocation-light on the hot path: one line buffer is
/// reused across rows (`read_line` instead of the per-line `String`s of
/// `lines()`), and fields are consumed straight off the split iterator
/// without collecting them — only the parsed `Value`s themselves
/// allocate. `crates/bench/benches/csv_ingest.rs` pins the throughput.
pub fn read_relation(
    schema: Schema,
    mut reader: impl BufRead,
) -> Result<TemporalRelation, TemporalError> {
    let arity = schema.arity();
    let mut rel = TemporalRelation::new(schema);
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        let read = reader.read_line(&mut line).map_err(|e| TemporalError::NonSequential {
            index: lineno,
            reason: format!("I/O error: {e}"),
        })?;
        if read == 0 {
            break;
        }
        let row_index = lineno;
        lineno += 1;
        if row_index == 0 {
            // Header.
            continue;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        // Check the column count before parsing any field, so a row with
        // the wrong shape reports ArityMismatch rather than a misleading
        // parse error on whichever value landed in the wrong column. The
        // extra `count()` pass allocates nothing.
        let got = trimmed.split(',').count();
        if got != arity + 2 {
            return Err(TemporalError::ArityMismatch { got, expected: arity + 2 });
        }
        let mut fields = trimmed.split(',');
        let mut values = Vec::with_capacity(arity);
        for i in 0..arity {
            let raw = fields.next().expect("count checked above");
            values.push(parse_value(raw, rel.schema().attribute(i).data_type(), row_index)?);
        }
        let parse_t = |raw: &str| -> Result<i64, TemporalError> {
            raw.trim().parse::<i64>().map_err(|_| TemporalError::NonSequential {
                index: row_index,
                reason: format!("cannot parse chronon {raw:?}"),
            })
        };
        let start = parse_t(fields.next().expect("count checked above"))?;
        let end = parse_t(fields.next().expect("count checked above"))?;
        rel.push(values, TimeInterval::new(start, end)?)?;
    }
    Ok(rel)
}

fn escape(v: &Value) -> String {
    let s = v.to_string();
    debug_assert!(!s.contains(','), "CSV fields must not contain commas");
    s
}

/// Writes a temporal relation as CSV (header + one row per tuple).
pub fn write_relation(relation: &TemporalRelation, mut writer: impl Write) -> std::io::Result<()> {
    let names: Vec<&str> = relation.schema().attributes().iter().map(Attribute::name).collect();
    writeln!(writer, "{},t_start,t_end", names.join(","))?;
    for t in relation.iter() {
        let vals: Vec<String> = t.values().iter().map(escape).collect();
        writeln!(writer, "{},{},{}", vals.join(","), t.interval().start(), t.interval().end())?;
    }
    Ok(())
}

/// Writes a sequential relation (an ITA/PTA result) as CSV: the grouping
/// key rendered per `group_names`, the aggregate values per `value_names`,
/// then the interval bounds.
pub fn write_sequential(
    seq: &SequentialRelation,
    group_names: &[&str],
    value_names: &[&str],
    mut writer: impl Write,
) -> std::io::Result<()> {
    let mut header: Vec<String> = group_names.iter().map(|s| s.to_string()).collect();
    header.extend(value_names.iter().map(|s| s.to_string()));
    writeln!(writer, "{},t_start,t_end", header.join(","))?;
    for i in 0..seq.len() {
        let key = seq
            .group_key(seq.group(i))
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let mut fields: Vec<String> = key.values().iter().map(escape).collect();
        for d in 0..seq.dims() {
            fields.push(format!("{}", seq.value(i, d)));
        }
        writeln!(
            writer,
            "{},{},{}",
            fields.join(","),
            seq.interval(i).start(),
            seq.interval(i).end()
        )?;
    }
    Ok(())
}

/// Convenience re-export of [`Tuple`] construction from parsed parts.
pub fn tuple(values: Vec<Value>, interval: TimeInterval) -> Tuple {
    Tuple::new(values, interval)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn schema_parsing() {
        let s = parse_schema("Empl:str, Sal:int, Rate:float, Active:bool").unwrap();
        assert_eq!(s.arity(), 4);
        assert_eq!(s.attribute(1).data_type(), DataType::Int);
        assert!(parse_schema("X").is_err());
        assert!(parse_schema("X:widget").is_err());
        assert!(parse_schema("X:int,X:int").is_err());
    }

    #[test]
    fn relation_roundtrip() {
        let schema = parse_schema("Empl:str,Proj:str,Sal:int").unwrap();
        let mut rel = TemporalRelation::new(schema.clone());
        rel.push(
            vec![Value::str("John"), Value::str("A"), Value::Int(800)],
            TimeInterval::new(1, 4).unwrap(),
        )
        .unwrap();
        rel.push(
            vec![Value::str("Ann"), Value::str("A"), Value::Int(400)],
            TimeInterval::new(3, 6).unwrap(),
        )
        .unwrap();
        let mut buf = Vec::new();
        write_relation(&rel, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("Empl,Proj,Sal,t_start,t_end\n"));
        let back = read_relation(schema, BufReader::new(&buf[..])).unwrap();
        assert_eq!(back, rel);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let schema = parse_schema("V:int").unwrap();
        let text = "V,t_start,t_end\n# comment\n\n5,1,2\n";
        let rel = read_relation(schema, BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.tuples()[0].value(0), &Value::Int(5));
    }

    #[test]
    fn malformed_rows_are_rejected() {
        let schema = parse_schema("V:int").unwrap();
        for text in [
            "V,t_start,t_end\n5,1\n",   // missing field
            "V,t_start,t_end\nx,1,2\n", // bad int
            "V,t_start,t_end\n5,9,2\n", // inverted interval
            "V,t_start,t_end\n5,a,2\n", // bad chronon
        ] {
            assert!(
                read_relation(schema.clone(), BufReader::new(text.as_bytes())).is_err(),
                "{text:?} should fail"
            );
        }
    }

    #[test]
    fn wrong_column_counts_report_arity_not_parse_errors() {
        // A row with too many fields must say ArityMismatch even though
        // the misplaced field ("extra") would also fail to parse as a
        // chronon — the column count is the real problem.
        let schema = parse_schema("Empl:str,Proj:str,Sal:int").unwrap();
        for (text, got) in [
            ("Empl,Proj,Sal,t_start,t_end\ne1,p1,100,extra,0,5\n", 6),
            ("Empl,Proj,Sal,t_start,t_end\ne1,p1,100,0\n", 4),
        ] {
            let err = read_relation(schema.clone(), BufReader::new(text.as_bytes())).unwrap_err();
            assert!(
                matches!(err, TemporalError::ArityMismatch { got: g, expected: 5 } if g == got),
                "{text:?}: {err}"
            );
        }
    }

    #[test]
    fn sequential_export_matches_layout() {
        use crate::{GroupKey, SequentialBuilder};
        let mut b = SequentialBuilder::new(1);
        b.push(GroupKey::new(vec![Value::str("A")]), TimeInterval::new(1, 3).unwrap(), &[733.5])
            .unwrap();
        let seq = b.build();
        let mut buf = Vec::new();
        write_sequential(&seq, &["Proj"], &["AvgSal"], &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "Proj,AvgSal,t_start,t_end\nA,733.5,1,3\n");
    }
}
