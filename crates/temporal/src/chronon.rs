//! The discrete time domain.
//!
//! The paper assumes a discrete time domain `∆T` whose elements are called
//! *chronons* (time points/instants) with a total order — e.g. calendar
//! months. We model a chronon as an `i64`, which is large enough for any
//! practical granularity (nanoseconds since the epoch still fit) while
//! keeping interval arithmetic trivial.

/// A time instant in the discrete time domain.
pub type Chronon = i64;

/// The smallest representable chronon.
pub const MIN_CHRONON: Chronon = i64::MIN;

/// The largest representable chronon.
///
/// [`crate::TimeInterval`] end points are capped one below this so that the
/// half-open successor `end + 1` used by sweep algorithms never overflows.
pub const MAX_CHRONON: Chronon = i64::MAX - 1;
