//! Error type for the aggregation operators.

use std::fmt;

use pta_temporal::TemporalError;

/// Errors raised while evaluating temporal aggregation queries.
#[derive(Debug, Clone, PartialEq)]
pub enum ItaError {
    /// An underlying data-model error.
    Temporal(TemporalError),
    /// An aggregate function was applied to a non-numeric attribute.
    NonNumericAggregate {
        /// The offending attribute.
        attribute: String,
    },
    /// A query listed no aggregate functions.
    NoAggregates,
    /// An STA query supplied no spans.
    EmptySpans,
    /// STA spans must be sorted and pairwise disjoint so the result is a
    /// sequential relation.
    OverlappingSpans {
        /// Index of the offending span.
        index: usize,
    },
    /// A span width was not positive.
    InvalidSpanWidth(i64),
}

impl fmt::Display for ItaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Temporal(e) => write!(f, "{e}"),
            Self::NonNumericAggregate { attribute } => {
                write!(f, "cannot aggregate non-numeric attribute {attribute:?}")
            }
            Self::NoAggregates => write!(f, "query lists no aggregate functions"),
            Self::EmptySpans => write!(f, "STA query supplied no spans"),
            Self::OverlappingSpans { index } => {
                write!(f, "STA span {index} overlaps or precedes its predecessor")
            }
            Self::InvalidSpanWidth(w) => write!(f, "span width must be positive, got {w}"),
        }
    }
}

impl std::error::Error for ItaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Temporal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TemporalError> for ItaError {
    fn from(e: TemporalError) -> Self {
        Self::Temporal(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_temporal_errors() {
        let e: ItaError = TemporalError::UnknownAttribute("X".into()).into();
        assert!(e.to_string().contains("unknown attribute"));
    }
}
