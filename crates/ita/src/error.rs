//! Error type for the aggregation operators.

use std::fmt;

use pta_temporal::{CommonError, TemporalError};

/// Errors raised while evaluating temporal aggregation queries.
#[derive(Debug, Clone, PartialEq)]
pub enum ItaError {
    /// An underlying data-model error.
    Temporal(TemporalError),
    /// An aggregate function was applied to a non-numeric attribute.
    NonNumericAggregate {
        /// The offending attribute.
        attribute: String,
    },
    /// STA spans must be sorted and pairwise disjoint so the result is a
    /// sequential relation.
    OverlappingSpans {
        /// Index of the offending span.
        index: usize,
    },
    /// A failure mode shared across the workspace (empty aggregate list,
    /// empty span list, non-positive span width, ...).
    Common(CommonError),
}

impl ItaError {
    /// A query listed no aggregate functions.
    pub fn no_aggregates() -> Self {
        Self::Common(CommonError::empty_input("aggregate list"))
    }

    /// An STA query supplied no spans.
    pub fn empty_spans() -> Self {
        Self::Common(CommonError::empty_input("span list"))
    }

    /// A span width was not positive.
    pub fn invalid_span_width(width: i64) -> Self {
        Self::Common(CommonError::invalid_parameter(
            "span width",
            format!("must be positive, got {width}"),
        ))
    }

    /// The shared failure vocabulary, if this error carries one (looking
    /// through wrapped lower-layer errors).
    pub fn common(&self) -> Option<&CommonError> {
        match self {
            Self::Common(c) => Some(c),
            Self::Temporal(e) => e.common(),
            _ => None,
        }
    }
}

impl fmt::Display for ItaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Temporal(e) => write!(f, "{e}"),
            Self::NonNumericAggregate { attribute } => {
                write!(f, "cannot aggregate non-numeric attribute {attribute:?}")
            }
            Self::OverlappingSpans { index } => {
                write!(f, "STA span {index} overlaps or precedes its predecessor")
            }
            Self::Common(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ItaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Temporal(e) => Some(e),
            Self::Common(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TemporalError> for ItaError {
    fn from(e: TemporalError) -> Self {
        Self::Temporal(e)
    }
}

impl From<CommonError> for ItaError {
    fn from(e: CommonError) -> Self {
        Self::Common(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_temporal_errors() {
        let e: ItaError = TemporalError::UnknownAttribute("X".into()).into();
        assert!(e.to_string().contains("unknown attribute"));
    }

    #[test]
    fn collapsed_variants_expose_the_shared_vocabulary() {
        assert!(ItaError::no_aggregates().common().is_some_and(CommonError::is_empty_input));
        assert!(ItaError::empty_spans().common().is_some_and(CommonError::is_empty_input));
        let e = ItaError::invalid_span_width(0);
        assert!(e.common().is_some_and(CommonError::is_invalid_parameter));
        assert!(e.to_string().contains("span width"));
    }
}
