//! Streaming instant temporal aggregation.
//!
//! [`StreamingIta`] computes the ITA result one tuple at a time, in the
//! (group, time) order a sequential relation requires. The greedy PTA
//! algorithms (gPTAc/gPTAε, §6.2–6.3) consume this iterator so merging can
//! begin *before* the full ITA result exists: the paper's "trivial
//! modifications to the ITA algorithm ... to allow processing the tuples
//! one by one as they become available".

use std::collections::BTreeMap;

use pta_temporal::{Chronon, GroupKey, TemporalRelation, TimeInterval};

use crate::aggregate::{Accumulator, AggregateFunction};
use crate::error::ItaError;
use crate::ita::ItaQuerySpec;

/// One ITA result tuple: group key, maximal constant interval, `p`
/// aggregate values.
#[derive(Debug, Clone, PartialEq)]
pub struct ItaRow {
    /// Values of the grouping attributes.
    pub key: GroupKey,
    /// Maximal interval over which the aggregate values are constant.
    pub interval: TimeInterval,
    /// Aggregate values `B1..Bp`.
    pub values: Vec<f64>,
}

/// Sweep event: at chronon `t`, the row with the given argument values
/// enters (`start`) or leaves the live set.
#[derive(Debug, Clone)]
struct Event {
    t: Chronon,
    row: usize,
    start: bool,
}

/// Per-group chronological sweep state.
#[derive(Debug)]
struct GroupSweep {
    /// Argument values per input row, one `f64` per aggregate spec.
    row_values: Vec<Vec<f64>>,
    events: Vec<Event>,
    pos: usize,
    accumulators: Vec<Accumulator>,
    live: usize,
    prev_t: Chronon,
    /// Constant run awaiting coalescing with the next emission.
    pending: Option<(TimeInterval, Vec<f64>)>,
    drained: bool,
}

impl GroupSweep {
    fn new(rows: Vec<(TimeInterval, Vec<f64>)>, functions: &[AggregateFunction]) -> Self {
        let mut row_values = Vec::with_capacity(rows.len());
        let mut events = Vec::with_capacity(rows.len() * 2);
        for (i, (interval, values)) in rows.into_iter().enumerate() {
            events.push(Event { t: interval.start(), row: i, start: true });
            events.push(Event { t: interval.end() + 1, row: i, start: false });
            row_values.push(values);
        }
        events.sort_by_key(|e| e.t);
        let accumulators = functions.iter().map(|&f| Accumulator::for_function(f)).collect();
        Self {
            row_values,
            events,
            pos: 0,
            accumulators,
            live: 0,
            prev_t: 0,
            pending: None,
            drained: false,
        }
    }

    /// Advances the sweep until one coalesced ITA row is complete.
    fn next_row(&mut self) -> Option<(TimeInterval, Vec<f64>)> {
        loop {
            if self.pos >= self.events.len() {
                if self.drained {
                    return None;
                }
                self.drained = true;
                return self.pending.take();
            }
            let t = self.events[self.pos].t;
            let mut flushed = None;
            if self.live > 0 && self.prev_t < t {
                // pta-lint: allow(no-panic-in-lib) — `prev_t < t` makes the run non-empty.
                let interval = TimeInterval::new(self.prev_t, t - 1).expect("prev_t < t");
                let values: Vec<f64> = self
                    .accumulators
                    .iter()
                    // pta-lint: allow(no-panic-in-lib) — `live > 0` means
                    // every accumulator saw at least one insert.
                    .map(|a| a.value().expect("live > 0 implies a defined aggregate"))
                    .collect();
                flushed = self.coalesce_emit(interval, values);
            }
            while self.pos < self.events.len() && self.events[self.pos].t == t {
                let ev = &self.events[self.pos];
                let vals = &self.row_values[ev.row];
                for (acc, &v) in self.accumulators.iter_mut().zip(vals) {
                    if ev.start {
                        acc.insert(v);
                    } else {
                        acc.remove(v);
                    }
                }
                if ev.start {
                    self.live += 1;
                } else {
                    self.live -= 1;
                }
                self.pos += 1;
            }
            self.prev_t = t;
            if flushed.is_some() {
                return flushed;
            }
        }
    }

    /// Coalescing step of Def. 1: extends the pending run when the new run
    /// meets it with identical aggregate values; otherwise the pending run
    /// is complete and returned.
    fn coalesce_emit(
        &mut self,
        interval: TimeInterval,
        values: Vec<f64>,
    ) -> Option<(TimeInterval, Vec<f64>)> {
        match &mut self.pending {
            Some((piv, pvals)) if piv.meets(&interval) && *pvals == values => {
                *piv = piv.span(&interval);
                None
            }
            _ => self.pending.replace((interval, values)),
        }
    }
}

/// A group's raw rows awaiting their sweep: `(interval, argument values)`.
type GroupRows = Vec<(TimeInterval, Vec<f64>)>;

/// Iterator producing the ITA result of a query one tuple at a time, in
/// (group, time) order.
#[derive(Debug)]
pub struct StreamingIta {
    functions: Vec<AggregateFunction>,
    /// Remaining groups in ascending key order; reversed so `pop` yields
    /// the next group.
    groups: Vec<(GroupKey, GroupRows)>,
    current: Option<(GroupKey, GroupSweep)>,
}

impl StreamingIta {
    /// Partitions `relation` by the query's grouping attributes and
    /// prepares per-group sweeps. Fails when the query is malformed (no
    /// aggregates, unknown or non-numeric attributes).
    pub fn new(relation: &TemporalRelation, spec: &ItaQuerySpec) -> Result<Self, ItaError> {
        if spec.aggregates.is_empty() {
            return Err(ItaError::no_aggregates());
        }
        let schema = relation.schema();
        let group_idx =
            schema.indices_of(&spec.grouping.iter().map(String::as_str).collect::<Vec<_>>())?;
        // Resolve each aggregate's argument column; count(*) takes none.
        let mut arg_idx: Vec<Option<usize>> = Vec::with_capacity(spec.aggregates.len());
        for agg in &spec.aggregates {
            if agg.function == AggregateFunction::Count && agg.attribute == "*" {
                arg_idx.push(None);
            } else {
                arg_idx.push(Some(schema.index_of(&agg.attribute)?));
            }
        }

        let mut partitions: BTreeMap<GroupKey, Vec<(TimeInterval, Vec<f64>)>> = BTreeMap::new();
        for tuple in relation.iter() {
            let key = GroupKey::new(tuple.project(&group_idx));
            let mut values = Vec::with_capacity(arg_idx.len());
            for (ai, agg) in arg_idx.iter().zip(&spec.aggregates) {
                let v = match ai {
                    None => 0.0, // count(*) ignores the argument
                    Some(i) => tuple.value(*i).as_f64().ok_or_else(|| {
                        ItaError::NonNumericAggregate { attribute: agg.attribute.clone() }
                    })?,
                };
                values.push(v);
            }
            partitions.entry(key).or_default().push((tuple.interval(), values));
        }

        let mut groups: Vec<_> = partitions.into_iter().collect();
        groups.reverse();
        Ok(Self {
            functions: spec.aggregates.iter().map(|a| a.function).collect(),
            groups,
            current: None,
        })
    }

    /// Number of aggregate dimensions `p` of the produced rows.
    pub fn dims(&self) -> usize {
        self.functions.len()
    }
}

impl Iterator for StreamingIta {
    type Item = ItaRow;

    fn next(&mut self) -> Option<ItaRow> {
        loop {
            if let Some((key, sweep)) = &mut self.current {
                if let Some((interval, values)) = sweep.next_row() {
                    return Some(ItaRow { key: key.clone(), interval, values });
                }
                self.current = None;
            }
            let (key, rows) = self.groups.pop()?;
            let sweep = GroupSweep::new(rows, &self.functions);
            self.current = Some((key, sweep));
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::aggregate::AggregateSpec;
    use pta_temporal::{DataType, Schema, Value};

    /// The paper's running example, Fig. 1(a).
    pub(crate) fn proj() -> TemporalRelation {
        let schema =
            Schema::of(&[("Empl", DataType::Str), ("Proj", DataType::Str), ("Sal", DataType::Int)])
                .unwrap();
        let rows = [
            ("John", "A", 800, 1, 4),
            ("Ann", "A", 400, 3, 6),
            ("Tom", "A", 300, 4, 7),
            ("John", "B", 500, 4, 5),
            ("John", "B", 500, 7, 8),
        ];
        TemporalRelation::from_rows(
            schema,
            rows.iter().map(|(e, p, s, a, b)| {
                (
                    vec![Value::str(*e), Value::str(*p), Value::Int(*s)],
                    TimeInterval::new(*a, *b).unwrap(),
                )
            }),
        )
        .unwrap()
    }

    #[test]
    fn streaming_matches_fig_1c() {
        let spec = ItaQuerySpec {
            grouping: vec!["Proj".into()],
            aggregates: vec![AggregateSpec::avg("Sal").as_output("AvgSal")],
        };
        let rows: Vec<ItaRow> = StreamingIta::new(&proj(), &spec).unwrap().collect();
        let expected = [
            ("A", 1, 2, 800.0),
            ("A", 3, 3, 600.0),
            ("A", 4, 4, 500.0),
            ("A", 5, 6, 350.0),
            ("A", 7, 7, 300.0),
            ("B", 4, 5, 500.0),
            ("B", 7, 8, 500.0),
        ];
        assert_eq!(rows.len(), expected.len());
        for (row, (g, a, b, v)) in rows.iter().zip(expected) {
            assert_eq!(row.key.values(), &[Value::str(g)]);
            assert_eq!(row.interval, TimeInterval::new(a, b).unwrap());
            assert!((row.values[0] - v).abs() < 1e-9, "{} != {v}", row.values[0]);
        }
    }

    #[test]
    fn rejects_missing_aggregates() {
        let spec = ItaQuerySpec { grouping: vec![], aggregates: vec![] };
        let err = StreamingIta::new(&proj(), &spec).unwrap_err();
        assert!(err.common().is_some_and(pta_temporal::CommonError::is_empty_input));
    }

    #[test]
    fn rejects_non_numeric_aggregate() {
        let spec = ItaQuerySpec { grouping: vec![], aggregates: vec![AggregateSpec::avg("Empl")] };
        assert!(matches!(
            StreamingIta::new(&proj(), &spec),
            Err(ItaError::NonNumericAggregate { .. })
        ));
    }
}
