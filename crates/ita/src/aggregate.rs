//! Aggregate functions and their incremental accumulators.

use std::fmt;

use crate::multiset::OrderedMultiset;

/// The aggregate functions supported by the temporal aggregation operators.
///
/// Each is evaluated over the multiset of attribute values of the tuples in
/// one aggregation group `r_{g,t}` (Def. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateFunction {
    /// Number of tuples in the group.
    Count,
    /// Sum of the attribute values.
    Sum,
    /// Arithmetic mean of the attribute values.
    Avg,
    /// Minimum attribute value.
    Min,
    /// Maximum attribute value.
    Max,
}

impl AggregateFunction {
    /// Lower-case SQL-ish name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Count => "count",
            Self::Sum => "sum",
            Self::Avg => "avg",
            Self::Min => "min",
            Self::Max => "max",
        }
    }
}

impl fmt::Display for AggregateFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One entry of the aggregate-function list `F = {f1/B1, ..., fp/Bp}`:
/// a function applied to an input attribute, stored under an output name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggregateSpec {
    /// The aggregate function `f_i`.
    pub function: AggregateFunction,
    /// The argument attribute the function aggregates over. Ignored (and
    /// conventionally `"*"`) for `count`.
    pub attribute: String,
    /// The output attribute name `B_i`.
    pub output: String,
}

impl AggregateSpec {
    /// Creates a spec with an explicit output name.
    pub fn new(
        function: AggregateFunction,
        attribute: impl Into<String>,
        output: impl Into<String>,
    ) -> Self {
        Self { function, attribute: attribute.into(), output: output.into() }
    }

    /// `avg(attr)` named `Avg<attr>`-style shorthand constructors.
    pub fn avg(attribute: &str) -> Self {
        Self::new(AggregateFunction::Avg, attribute, format!("avg_{attribute}"))
    }

    /// `sum(attr)` shorthand.
    pub fn sum(attribute: &str) -> Self {
        Self::new(AggregateFunction::Sum, attribute, format!("sum_{attribute}"))
    }

    /// `min(attr)` shorthand.
    pub fn min(attribute: &str) -> Self {
        Self::new(AggregateFunction::Min, attribute, format!("min_{attribute}"))
    }

    /// `max(attr)` shorthand.
    pub fn max(attribute: &str) -> Self {
        Self::new(AggregateFunction::Max, attribute, format!("max_{attribute}"))
    }

    /// `count(*)` shorthand.
    pub fn count() -> Self {
        Self::new(AggregateFunction::Count, "*", "count")
    }

    /// Renames the output attribute (builder style).
    pub fn as_output(mut self, output: impl Into<String>) -> Self {
        self.output = output.into();
        self
    }
}

/// Incremental accumulator evaluating one aggregate function under
/// insertions and deletions, as required by the chronological sweep.
#[derive(Debug, Clone)]
pub enum Accumulator {
    /// Running count.
    Count {
        /// Live tuple count.
        n: usize,
    },
    /// Running sum (compensated) and count; evaluates `sum` or `avg`.
    Sum {
        /// Kahan-compensated running sum.
        sum: KahanSum,
        /// Live tuple count.
        n: usize,
        /// When true the accumulator reports the mean instead of the sum.
        mean: bool,
    },
    /// Ordered multiset; evaluates `min` or `max`.
    Extremum {
        /// Live values with multiplicities.
        set: OrderedMultiset,
        /// When true reports the maximum, otherwise the minimum.
        max: bool,
    },
}

impl Accumulator {
    /// Creates the accumulator implementing `function`.
    pub fn for_function(function: AggregateFunction) -> Self {
        match function {
            AggregateFunction::Count => Accumulator::Count { n: 0 },
            AggregateFunction::Sum => {
                Accumulator::Sum { sum: KahanSum::default(), n: 0, mean: false }
            }
            AggregateFunction::Avg => {
                Accumulator::Sum { sum: KahanSum::default(), n: 0, mean: true }
            }
            AggregateFunction::Min => {
                Accumulator::Extremum { set: OrderedMultiset::new(), max: false }
            }
            AggregateFunction::Max => {
                Accumulator::Extremum { set: OrderedMultiset::new(), max: true }
            }
        }
    }

    /// A tuple with argument value `v` becomes live.
    pub fn insert(&mut self, v: f64) {
        match self {
            Accumulator::Count { n } => *n += 1,
            Accumulator::Sum { sum, n, .. } => {
                sum.add(v);
                *n += 1;
            }
            Accumulator::Extremum { set, .. } => set.insert(v),
        }
    }

    /// A tuple with argument value `v` stops being live.
    pub fn remove(&mut self, v: f64) {
        match self {
            Accumulator::Count { n } => *n -= 1,
            Accumulator::Sum { sum, n, .. } => {
                sum.add(-v);
                *n -= 1;
            }
            Accumulator::Extremum { set, .. } => {
                let present = set.remove(v);
                debug_assert!(present, "removed value was never inserted");
            }
        }
    }

    /// The aggregate value over the live tuples; `None` when none are live
    /// (the aggregation group `r_{g,t}` is empty and no tuple is emitted).
    pub fn value(&self) -> Option<f64> {
        match self {
            Accumulator::Count { n } => (*n > 0).then_some(*n as f64),
            Accumulator::Sum { sum, n, mean } => {
                if *n == 0 {
                    None
                } else if *mean {
                    Some(sum.value() / *n as f64)
                } else {
                    Some(sum.value())
                }
            }
            Accumulator::Extremum { set, max } => {
                if *max {
                    set.max()
                } else {
                    set.min()
                }
            }
        }
    }

    /// Number of live tuples.
    pub fn live(&self) -> usize {
        match self {
            Accumulator::Count { n } => *n,
            Accumulator::Sum { n, .. } => *n,
            Accumulator::Extremum { set, .. } => set.len(),
        }
    }
}

/// Kahan–Babuška compensated summation. Insertions and deletions of the
/// same values should cancel as exactly as possible so that coalescing of
/// equal consecutive aggregate values is not defeated by float drift.
#[derive(Debug, Clone, Copy, Default)]
pub struct KahanSum {
    sum: f64,
    compensation: f64,
}

impl KahanSum {
    /// Adds `v` to the running sum.
    pub fn add(&mut self, v: f64) {
        let t = self.sum + v;
        if self.sum.abs() >= v.abs() {
            self.compensation += (self.sum - t) + v;
        } else {
            self.compensation += (v - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated sum.
    pub fn value(&self) -> f64 {
        self.sum + self.compensation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_tracks_insertions() {
        let mut a = Accumulator::for_function(AggregateFunction::Count);
        assert_eq!(a.value(), None);
        a.insert(5.0);
        a.insert(9.0);
        assert_eq!(a.value(), Some(2.0));
        a.remove(5.0);
        assert_eq!(a.value(), Some(1.0));
    }

    #[test]
    fn avg_is_sum_over_count() {
        let mut a = Accumulator::for_function(AggregateFunction::Avg);
        a.insert(800.0);
        a.insert(400.0);
        assert_eq!(a.value(), Some(600.0));
        a.insert(300.0);
        assert_eq!(a.value(), Some(500.0));
        a.remove(800.0);
        assert_eq!(a.value(), Some(350.0));
    }

    #[test]
    fn sum_supports_deletion() {
        let mut a = Accumulator::for_function(AggregateFunction::Sum);
        a.insert(1.5);
        a.insert(2.5);
        a.remove(1.5);
        assert_eq!(a.value(), Some(2.5));
        a.remove(2.5);
        assert_eq!(a.value(), None);
    }

    #[test]
    fn min_max_track_extrema_under_deletion() {
        let mut lo = Accumulator::for_function(AggregateFunction::Min);
        let mut hi = Accumulator::for_function(AggregateFunction::Max);
        for v in [3.0, 1.0, 2.0] {
            lo.insert(v);
            hi.insert(v);
        }
        assert_eq!(lo.value(), Some(1.0));
        assert_eq!(hi.value(), Some(3.0));
        lo.remove(1.0);
        hi.remove(3.0);
        assert_eq!(lo.value(), Some(2.0));
        assert_eq!(hi.value(), Some(2.0));
    }

    #[test]
    fn kahan_cancellation_is_exact_for_roundtrips() {
        let mut s = KahanSum::default();
        let vs = [0.1, 0.2, 0.3, 1e15, 7.0];
        for v in vs {
            s.add(v);
        }
        for v in vs {
            s.add(-v);
        }
        assert_eq!(s.value(), 0.0);
    }

    #[test]
    fn spec_shorthands() {
        let s = AggregateSpec::avg("Sal").as_output("AvgSal");
        assert_eq!(s.function, AggregateFunction::Avg);
        assert_eq!(s.attribute, "Sal");
        assert_eq!(s.output, "AvgSal");
        assert_eq!(AggregateSpec::count().attribute, "*");
    }
}
