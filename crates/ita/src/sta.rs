//! Span temporal aggregation (STA).
//!
//! STA lets the application fix the reporting intervals in the query (e.g.
//! one tuple per trimester, Fig. 1(b)): for each span and group, the
//! aggregates are evaluated over all argument tuples whose timestamp
//! *overlaps* the span, each tuple counted once. The result size is
//! predictable but ignores the data distribution — the limitation PTA
//! addresses.

use std::collections::BTreeMap;

use pta_temporal::{
    Chronon, GroupKey, SequentialBuilder, SequentialRelation, TemporalRelation, TimeInterval,
};

use crate::aggregate::{Accumulator, AggregateFunction, AggregateSpec};
use crate::error::ItaError;

/// How the time line is partitioned into reporting spans.
#[derive(Debug, Clone, PartialEq)]
pub enum SpanSpec {
    /// Regular spans `[origin + k·width, origin + (k+1)·width − 1]`,
    /// instantiated over the relation's time extent.
    Fixed {
        /// Start of span 0.
        origin: Chronon,
        /// Positive span width in chronons.
        width: i64,
    },
    /// Explicit spans; must be sorted and pairwise disjoint so the result
    /// is a sequential relation.
    Explicit(Vec<TimeInterval>),
}

impl SpanSpec {
    /// Materialises the span list for a relation covering `extent`.
    fn spans(&self, extent: Option<TimeInterval>) -> Result<Vec<TimeInterval>, ItaError> {
        match self {
            SpanSpec::Fixed { origin, width } => {
                if *width <= 0 {
                    return Err(ItaError::invalid_span_width(*width));
                }
                let Some(extent) = extent else {
                    return Ok(Vec::new());
                };
                let mut spans = Vec::new();
                // First span index covering the extent start (floor division
                // handles extents starting before the origin).
                let mut k = (extent.start() - origin).div_euclid(*width);
                loop {
                    let s = origin + k * width;
                    if s > extent.end() {
                        break;
                    }
                    spans.push(TimeInterval::new(s, s + width - 1)?);
                    k += 1;
                }
                Ok(spans)
            }
            SpanSpec::Explicit(spans) => {
                if spans.is_empty() {
                    return Err(ItaError::empty_spans());
                }
                for i in 1..spans.len() {
                    if spans[i].start() <= spans[i - 1].end() {
                        return Err(ItaError::OverlappingSpans { index: i });
                    }
                }
                Ok(spans.clone())
            }
        }
    }
}

/// Span temporal aggregation: one result tuple per (group, span) with at
/// least one overlapping argument tuple.
pub fn sta(
    relation: &TemporalRelation,
    grouping: &[&str],
    aggregates: &[AggregateSpec],
    spans: &SpanSpec,
) -> Result<SequentialRelation, ItaError> {
    if aggregates.is_empty() {
        return Err(ItaError::no_aggregates());
    }
    let schema = relation.schema();
    let group_idx = schema.indices_of(grouping)?;
    let mut arg_idx: Vec<Option<usize>> = Vec::with_capacity(aggregates.len());
    for agg in aggregates {
        if agg.function == AggregateFunction::Count && agg.attribute == "*" {
            arg_idx.push(None);
        } else {
            arg_idx.push(Some(schema.index_of(&agg.attribute)?));
        }
    }
    let spans = spans.spans(relation.time_extent())?;

    let mut partitions: BTreeMap<GroupKey, Vec<(TimeInterval, Vec<f64>)>> = BTreeMap::new();
    for tuple in relation.iter() {
        let key = GroupKey::new(tuple.project(&group_idx));
        let mut values = Vec::with_capacity(arg_idx.len());
        for (ai, agg) in arg_idx.iter().zip(aggregates) {
            let v = match ai {
                None => 0.0,
                Some(i) => tuple.value(*i).as_f64().ok_or_else(|| {
                    ItaError::NonNumericAggregate { attribute: agg.attribute.clone() }
                })?,
            };
            values.push(v);
        }
        partitions.entry(key).or_default().push((tuple.interval(), values));
    }

    let p = aggregates.len();
    let mut builder = SequentialBuilder::new(p);
    for (key, rows) in partitions {
        for span in &spans {
            let mut accs: Vec<Accumulator> =
                aggregates.iter().map(|a| Accumulator::for_function(a.function)).collect();
            let mut any = false;
            for (interval, values) in &rows {
                if interval.overlaps(span) {
                    any = true;
                    for (acc, &v) in accs.iter_mut().zip(values) {
                        acc.insert(v);
                    }
                }
            }
            if any {
                let values: Vec<f64> = accs
                    .iter()
                    // pta-lint: allow(no-panic-in-lib) — `any` is only set
                    // after inserting into every accumulator in the group.
                    .map(|a| a.value().expect("non-empty span group"))
                    .collect();
                builder.push(key.clone(), *span, &values)?;
            }
        }
    }
    builder.finish();
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pta_temporal::Value;

    fn proj() -> TemporalRelation {
        crate::stream::tests::proj()
    }

    fn iv(a: i64, b: i64) -> TimeInterval {
        TimeInterval::new(a, b).unwrap()
    }

    /// Fig. 1(b): average monthly salary per project and trimester.
    #[test]
    fn fig_1b_trimester_averages() {
        let s = sta(
            &proj(),
            &["Proj"],
            &[AggregateSpec::avg("Sal").as_output("AvgSal")],
            &SpanSpec::Fixed { origin: 1, width: 4 },
        )
        .unwrap();
        assert_eq!(s.len(), 4);
        let expected =
            [("A", 1, 4, 500.0), ("A", 5, 8, 350.0), ("B", 1, 4, 500.0), ("B", 5, 8, 500.0)];
        for (i, (g, a, b, v)) in expected.iter().enumerate() {
            assert_eq!(s.group_key(s.group(i)).unwrap().values(), &[Value::str(*g)]);
            assert_eq!(s.interval(i), iv(*a, *b));
            assert!((s.value(i, 0) - v).abs() < 1e-9);
        }
    }

    #[test]
    fn spans_without_data_produce_no_tuples() {
        let s = sta(
            &proj(),
            &["Proj"],
            &[AggregateSpec::count()],
            &SpanSpec::Explicit(vec![iv(100, 200)]),
        )
        .unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn explicit_spans_must_be_disjoint() {
        let r = sta(
            &proj(),
            &[],
            &[AggregateSpec::count()],
            &SpanSpec::Explicit(vec![iv(1, 4), iv(4, 8)]),
        );
        assert!(matches!(r, Err(ItaError::OverlappingSpans { index: 1 })));
    }

    #[test]
    fn fixed_width_must_be_positive() {
        let r =
            sta(&proj(), &[], &[AggregateSpec::count()], &SpanSpec::Fixed { origin: 0, width: 0 });
        let err = r.unwrap_err();
        assert!(err.common().is_some_and(pta_temporal::CommonError::is_invalid_parameter));
    }

    #[test]
    fn fixed_spans_cover_extents_starting_before_origin() {
        let s =
            sta(&proj(), &[], &[AggregateSpec::count()], &SpanSpec::Fixed { origin: 3, width: 10 })
                .unwrap();
        // Extent [1, 8]: spans [-7, 2] and [3, 12] both overlap data.
        assert_eq!(s.len(), 2);
        assert_eq!(s.interval(0), iv(-7, 2));
        assert_eq!(s.interval(1), iv(3, 12));
    }
}
