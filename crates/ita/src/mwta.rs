//! Moving-window (cumulative) temporal aggregation (MWTA).
//!
//! MWTA generalises ITA: the aggregate at instant `t` ranges over all
//! tuples of the group holding anywhere in the window
//! `[t − before, t + after]` (§2.1). We use the classical reduction to
//! ITA: a tuple with timestamp `[b, e]` contributes to instant `t` iff
//! `[b, e]` intersects the window around `t`, which holds iff
//! `t ∈ [b − after, e + before]` — so MWTA equals ITA over the relation
//! with every timestamp stretched by `after` to the left and `before` to
//! the right.

use pta_temporal::{SequentialRelation, TemporalRelation, TimeInterval};

use crate::error::ItaError;
use crate::ita::{ita, ItaQuerySpec};

/// A moving window around each time instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Chronons before the instant included in the window (`≥ 0`).
    pub before: i64,
    /// Chronons after the instant included in the window (`≥ 0`).
    pub after: i64,
}

impl Window {
    /// A window reaching `before` chronons into the past only (cumulative
    /// aggregation when large).
    pub fn past(before: i64) -> Self {
        Self { before, after: 0 }
    }

    /// A symmetric window of `radius` chronons on both sides.
    pub fn symmetric(radius: i64) -> Self {
        Self { before: radius, after: radius }
    }
}

/// Moving-window temporal aggregation via the stretched-tuple reduction.
pub fn mwta(
    relation: &TemporalRelation,
    spec: &ItaQuerySpec,
    window: Window,
) -> Result<SequentialRelation, ItaError> {
    if window.before < 0 || window.after < 0 {
        return Err(ItaError::invalid_span_width(window.before.min(window.after)));
    }
    let mut stretched = TemporalRelation::new(relation.schema().clone());
    for tuple in relation.iter() {
        let iv = tuple.interval();
        let start = iv.start().saturating_sub(window.after);
        let end = iv.end().saturating_add(window.before);
        stretched.push(tuple.values().to_vec(), TimeInterval::new(start, end)?)?;
    }
    ita(&stretched, spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateSpec;
    use pta_temporal::{DataType, Schema, Value};

    fn iv(a: i64, b: i64) -> TimeInterval {
        TimeInterval::new(a, b).unwrap()
    }

    fn rel(rows: &[(i64, i64, i64)]) -> TemporalRelation {
        let schema = Schema::of(&[("V", DataType::Int)]).unwrap();
        TemporalRelation::from_rows(
            schema,
            rows.iter().map(|(v, a, b)| (vec![Value::Int(*v)], iv(*a, *b))),
        )
        .unwrap()
    }

    #[test]
    fn zero_window_equals_ita() {
        let r = rel(&[(1, 1, 4), (2, 3, 6)]);
        let spec = ItaQuerySpec::new(&[], vec![AggregateSpec::sum("V")]);
        let a = ita(&r, &spec).unwrap();
        let b = mwta(&r, &spec, Window { before: 0, after: 0 }).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn past_window_extends_influence_forward() {
        // Value 5 valid at [1, 1]; with a 2-chronon past window it is seen
        // at instants 1..3.
        let r = rel(&[(5, 1, 1)]);
        let spec = ItaQuerySpec::new(&[], vec![AggregateSpec::sum("V")]);
        let s = mwta(&r, &spec, Window::past(2)).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.interval(0), iv(1, 3));
        assert_eq!(s.value(0, 0), 5.0);
    }

    #[test]
    fn symmetric_window_smooths_counts() {
        let r = rel(&[(1, 1, 1), (1, 3, 3)]);
        let spec = ItaQuerySpec::new(&[], vec![AggregateSpec::count()]);
        let s = mwta(&r, &spec, Window::symmetric(1)).unwrap();
        // Stretched tuples: [0,2] and [2,4] → counts 1,2,1 over [0,1],[2,2],[3,4].
        assert_eq!(s.len(), 3);
        assert_eq!(s.value(1, 0), 2.0);
        assert_eq!(s.interval(1), iv(2, 2));
    }

    #[test]
    fn negative_window_rejected() {
        let r = rel(&[(1, 1, 1)]);
        let spec = ItaQuerySpec::new(&[], vec![AggregateSpec::count()]);
        assert!(mwta(&r, &spec, Window { before: -1, after: 0 }).is_err());
    }
}
