//! Temporal aggregation operators.
//!
//! This crate implements the aggregation substrate the PTA paper builds on:
//!
//! * **ITA** — instant temporal aggregation (Def. 1): for every time
//!   instant, aggregate over all tuples of the same group holding at that
//!   instant, then coalesce constant runs. Result size is up to `2n − 1`.
//!   Available eagerly ([`fn@ita`]) and as a streaming iterator
//!   ([`StreamingIta`]) so the greedy PTA algorithms can merge while ITA
//!   tuples are still being produced (§6.2).
//! * **STA** — span temporal aggregation: the caller fixes the reporting
//!   intervals (e.g. trimesters) and each result tuple aggregates over the
//!   argument tuples overlapping its span.
//! * **MWTA** — moving-window temporal aggregation: ITA over a window
//!   around each instant, implemented by the standard reduction of window
//!   queries to ITA over stretched tuples.
//!
//! Aggregate functions `count`, `sum`, `avg`, `min`, `max` are evaluated
//! incrementally during one chronological sweep per group.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod error;
pub mod ita;
pub mod multiset;
pub mod mwta;
pub mod sta;
pub mod stream;

pub use aggregate::{AggregateFunction, AggregateSpec};
pub use error::ItaError;
pub use ita::{ita, ItaQuerySpec};
pub use mwta::{mwta, Window};
pub use sta::{sta, SpanSpec};
pub use stream::{ItaRow, StreamingIta};

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, ItaError>;
