//! An ordered multiset of finite floats.
//!
//! `min`/`max` aggregates must support *deletion* during the chronological
//! sweep (a tuple's interval ends), which running scalars cannot do. This
//! multiset keeps value multiplicities in a `BTreeMap` keyed by a totally
//! ordered float wrapper, giving `O(log k)` insert/remove and `O(log k)`
//! min/max where `k` is the number of distinct live values.

use std::collections::BTreeMap;

/// Finite `f64` with the IEEE total order, usable as a `BTreeMap` key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdF64(pub f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Ordered multiset of finite floats with counted multiplicities.
#[derive(Debug, Default, Clone)]
pub struct OrderedMultiset {
    counts: BTreeMap<OrdF64, usize>,
    len: usize,
}

impl OrderedMultiset {
    /// Creates an empty multiset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts one occurrence of `v`.
    pub fn insert(&mut self, v: f64) {
        debug_assert!(v.is_finite(), "multiset values must be finite");
        *self.counts.entry(OrdF64(v)).or_insert(0) += 1;
        self.len += 1;
    }

    /// Removes one occurrence of `v`. Returns `false` when `v` was absent
    /// (callers treat that as an internal invariant violation).
    pub fn remove(&mut self, v: f64) -> bool {
        match self.counts.get_mut(&OrdF64(v)) {
            Some(c) if *c > 1 => {
                *c -= 1;
                self.len -= 1;
                true
            }
            Some(_) => {
                self.counts.remove(&OrdF64(v));
                self.len -= 1;
                true
            }
            None => false,
        }
    }

    /// The smallest live value.
    pub fn min(&self) -> Option<f64> {
        self.counts.keys().next().map(|k| k.0)
    }

    /// The largest live value.
    pub fn max(&self) -> Option<f64> {
        self.counts.keys().next_back().map(|k| k.0)
    }

    /// Total number of live occurrences.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the multiset is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_roundtrip() {
        let mut m = OrderedMultiset::new();
        m.insert(3.0);
        m.insert(1.0);
        m.insert(3.0);
        assert_eq!(m.len(), 3);
        assert_eq!(m.min(), Some(1.0));
        assert_eq!(m.max(), Some(3.0));
        assert!(m.remove(3.0));
        assert_eq!(m.max(), Some(3.0));
        assert!(m.remove(3.0));
        assert_eq!(m.max(), Some(1.0));
        assert!(!m.remove(3.0));
        assert!(m.remove(1.0));
        assert!(m.is_empty());
        assert_eq!(m.min(), None);
    }

    #[test]
    fn negative_zero_and_zero_coexist() {
        let mut m = OrderedMultiset::new();
        m.insert(0.0);
        m.insert(-0.0);
        assert_eq!(m.len(), 2);
        // total_cmp orders -0.0 < 0.0; removing each works independently.
        assert!(m.remove(-0.0));
        assert!(m.remove(0.0));
        assert!(m.is_empty());
    }

    #[test]
    fn duplicates_count() {
        let mut m = OrderedMultiset::new();
        for _ in 0..5 {
            m.insert(2.5);
        }
        for _ in 0..5 {
            assert!(m.remove(2.5));
        }
        assert!(!m.remove(2.5));
    }
}
