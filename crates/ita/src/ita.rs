//! Eager instant temporal aggregation (Def. 1).

use pta_temporal::{SequentialBuilder, SequentialRelation, TemporalRelation};

use crate::aggregate::AggregateSpec;
use crate::error::ItaError;
use crate::stream::StreamingIta;

/// An ITA query: grouping attributes `A` and aggregate functions `F`.
#[derive(Debug, Clone, PartialEq)]
pub struct ItaQuerySpec {
    /// Names of the grouping attributes `A = {A1, ..., Ak}` (may be empty:
    /// one global group).
    pub grouping: Vec<String>,
    /// The aggregate functions `F = {f1/B1, ..., fp/Bp}`.
    pub aggregates: Vec<AggregateSpec>,
}

impl ItaQuerySpec {
    /// Creates a spec from grouping-attribute names and aggregates.
    pub fn new(grouping: &[&str], aggregates: Vec<AggregateSpec>) -> Self {
        Self { grouping: grouping.iter().map(|s| s.to_string()).collect(), aggregates }
    }
}

/// Instant temporal aggregation `ᴳITA[A, F] r` (Def. 1).
///
/// For each combination of grouping values `g` and each time instant `t`,
/// the aggregates are evaluated over all tuples with `r.A = g` whose
/// timestamp contains `t`; value-equivalent results over consecutive
/// instants are coalesced into maximal intervals. The result is a
/// [`SequentialRelation`] with one dimension per aggregate, sorted by group
/// and chronologically within groups — the input format of PTA.
///
/// Runs in `O(n log n)` per group (endpoint sort + sweep with incremental
/// accumulators); `min`/`max` add an `O(log n)` multiset factor.
pub fn ita(
    relation: &TemporalRelation,
    spec: &ItaQuerySpec,
) -> Result<SequentialRelation, ItaError> {
    let stream = StreamingIta::new(relation, spec)?;
    let p = stream.dims();
    let mut builder = SequentialBuilder::with_capacity(p, relation.len() * 2);
    for row in stream {
        builder.push(row.key, row.interval, &row.values)?;
    }
    builder.finish();
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateSpec;
    use pta_temporal::{DataType, Schema, TimeInterval, Value};

    fn proj() -> TemporalRelation {
        crate::stream::tests::proj()
    }

    fn iv(a: i64, b: i64) -> TimeInterval {
        TimeInterval::new(a, b).unwrap()
    }

    #[test]
    fn fig_1c_average_salary_per_project() {
        let spec = ItaQuerySpec::new(&["Proj"], vec![AggregateSpec::avg("Sal")]);
        let s = ita(&proj(), &spec).unwrap();
        assert_eq!(s.len(), 7);
        s.validate().unwrap();
        assert_eq!(s.cmin(), 3);
        let vals: Vec<f64> = (0..7).map(|i| s.value(i, 0)).collect();
        assert_eq!(vals, vec![800.0, 600.0, 500.0, 350.0, 300.0, 500.0, 500.0]);
        assert_eq!(s.interval(3), iv(5, 6));
        assert_eq!(s.group_key(s.group(5)).unwrap().values(), &[Value::str("B")]);
    }

    #[test]
    fn multiple_aggregates_in_one_pass() {
        let spec = ItaQuerySpec::new(
            &["Proj"],
            vec![
                AggregateSpec::min("Sal"),
                AggregateSpec::max("Sal"),
                AggregateSpec::count(),
                AggregateSpec::sum("Sal"),
            ],
        );
        let s = ita(&proj(), &spec).unwrap();
        assert_eq!(s.dims(), 4);
        // Month 4, project A: salaries {800, 400, 300}.
        let i = (0..s.len()).find(|&i| s.interval(i).contains_point(4) && s.group(i) == 0).unwrap();
        assert_eq!(s.values(i), &[300.0, 800.0, 3.0, 1500.0]);
    }

    #[test]
    fn no_grouping_merges_everything() {
        let spec = ItaQuerySpec::new(&[], vec![AggregateSpec::count()]);
        let s = ita(&proj(), &spec).unwrap();
        s.validate().unwrap();
        // Counts over months 1..8: 1,1,2,4,3,2,2,1 coalesced:
        // [1,2]=1, [3,3]=2, [4,4]=4, [5,5]=3, [6,7]=2, [8,8]=1.
        let expected =
            [(1, 2, 1.0), (3, 3, 2.0), (4, 4, 4.0), (5, 5, 3.0), (6, 7, 2.0), (8, 8, 1.0)];
        assert_eq!(s.len(), expected.len());
        for (i, (a, b, v)) in expected.iter().enumerate() {
            assert_eq!(s.interval(i), iv(*a, *b));
            assert_eq!(s.value(i, 0), *v);
        }
    }

    #[test]
    fn gaps_are_preserved() {
        let schema = Schema::of(&[("K", DataType::Str), ("V", DataType::Int)]).unwrap();
        let rel = TemporalRelation::from_rows(
            schema,
            [
                (vec![Value::str("x"), Value::Int(1)], iv(1, 2)),
                (vec![Value::str("x"), Value::Int(1)], iv(10, 11)),
            ],
        )
        .unwrap();
        let s = ita(&rel, &ItaQuerySpec::new(&[], vec![AggregateSpec::sum("V")])).unwrap();
        assert_eq!(s.len(), 2);
        assert!(!s.adjacent(0));
        assert_eq!(s.cmin(), 2);
    }

    #[test]
    fn empty_input_yields_empty_result() {
        let schema = Schema::of(&[("V", DataType::Int)]).unwrap();
        let rel = TemporalRelation::new(schema);
        let s = ita(&rel, &ItaQuerySpec::new(&[], vec![AggregateSpec::sum("V")])).unwrap();
        assert!(s.is_empty());
    }

    /// The ITA result of `n` tuples has at most `2n − 1` tuples (§3).
    #[test]
    fn result_size_bound_holds_on_overlapping_input() {
        let schema = Schema::of(&[("V", DataType::Int)]).unwrap();
        let mut rel = TemporalRelation::new(schema);
        // Nested intervals force a change point at every endpoint.
        let n = 20;
        for i in 0..n {
            rel.push(vec![Value::Int(i)], iv(i, 2 * n - i)).unwrap();
        }
        let s = ita(&rel, &ItaQuerySpec::new(&[], vec![AggregateSpec::avg("V")])).unwrap();
        assert!(s.len() < 2 * n as usize, "|ITA| = {} > 2n-1", s.len());
        s.validate().unwrap();
    }
}
